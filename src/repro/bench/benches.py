"""Pinned benchmark workloads for the ``repro bench`` harness.

Each bench is a :class:`BenchSpec`: a setup callable building fresh
state (excluded from timing) and a body callable that executes a fixed,
seeded operation stream and returns the number of work units performed
(events run, probes issued, grants made, simulated cycles).  The
harness times the body only, so trial-to-trial variance is scheduler
noise, not allocation of the workload itself.

Sizes scale down uniformly under ``--quick`` (CI smoke) without
changing the operation mix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

#: unit of work each bench's body return value counts
Body = Callable[[], float]


@dataclass(frozen=True)
class BenchSpec:
    """One pinned benchmark: deterministic setup + timed body."""

    name: str
    #: what one unit of the body's return value means (for throughput)
    unit: str
    #: builds fresh state and returns the timed body
    setup: Callable[[bool], Body]
    #: one-line description for the report table
    description: str = ""


# --------------------------------------------------------------------- #
# Engine: event-queue churn
# --------------------------------------------------------------------- #
def _setup_event_queue(quick: bool) -> Body:
    from ..engine.event_queue import EventQueue

    n_rounds = 2_000 if quick else 20_000
    rng = random.Random(1234)
    # pre-draw the schedule pattern so the timed body does no RNG work
    delays = [rng.uniform(0.0, 10.0) for _ in range(64)]

    def body() -> float:
        q = EventQueue()
        events = 0
        counter = 0

        def tick() -> None:
            nonlocal counter
            counter += 1

        # seed a standing population, then churn: every pop schedules
        # two more until the budget is exhausted — mimics the fan-out of
        # SM grant events scheduling data/translation completions
        budget = n_rounds
        for i in range(32):
            q.schedule(delays[i % 64], tick)
        pending = 32
        while pending:
            handle = None
            if budget > 0:
                t = q.peek_time() or 0.0
                q.schedule(t + delays[budget % 64], tick)
                handle = q.schedule(t + delays[(budget + 7) % 64], tick)
                q.schedule(t + delays[(budget + 13) % 64], tick)
                pending += 3
                budget -= 1
                if budget % 5 == 0:
                    handle.cancel()
                    pending -= 1
            q.pop_and_run()
            pending -= 1
            events += 1
        return float(events)

    return body


# --------------------------------------------------------------------- #
# Engine: simulator drive loop (queue + dispatch overhead, no model)
# --------------------------------------------------------------------- #
def _setup_sim_drain(quick: bool) -> Body:
    from ..engine.simulator import Simulator

    n_events = 5_000 if quick else 50_000

    def body() -> float:
        sim = Simulator(sanitizer=None)
        remaining = n_events

        def hop() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining > 0:
                sim.schedule_after(1.0, hop)
                if remaining % 64 == 0:
                    sim.note_progress()

        sim.schedule(0.0, hop)
        sim.run()
        return float(n_events)

    return body


# --------------------------------------------------------------------- #
# Translation: baseline TLB steady state
# --------------------------------------------------------------------- #
def _tlb_stream(quick: bool) -> Tuple[list, int]:
    n_ops = 10_000 if quick else 100_000
    rng = random.Random(99)
    # 80/20 mix of a hot working set and a cold tail — steady-state hit
    # rates around what fig2 reports, so LRU refresh AND insert/evict
    # paths are both exercised
    hot = [rng.randrange(0, 48) for _ in range(n_ops)]
    stream = [
        vpn if rng.random() < 0.8 else rng.randrange(0, 4096)
        for vpn in hot
    ]
    return stream, n_ops


def _setup_tlb_baseline(quick: bool) -> Body:
    from ..translation.tlb import SetAssociativeTLB

    stream, n_ops = _tlb_stream(quick)

    def body() -> float:
        tlb = SetAssociativeTLB(64, 4, 1.0)
        probe = tlb.probe
        insert = tlb.insert
        for vpn in stream:
            if not probe(vpn).hit:
                insert(vpn, vpn + 1)
        return float(n_ops)

    return body


# --------------------------------------------------------------------- #
# Translation: partitioned TLB with set sharing
# --------------------------------------------------------------------- #
def _setup_tlb_partitioned(quick: bool) -> Body:
    from ..core.partitioned_tlb import PartitionedL1TLB
    from ..core.set_sharing import SharingRegister

    stream, n_ops = _tlb_stream(quick)
    rng = random.Random(7)
    tbs = [rng.randrange(0, 8) for _ in range(len(stream))]

    def body() -> float:
        tlb = PartitionedL1TLB(64, 4, 1.0, sharing=SharingRegister(16))
        tlb.configure_occupancy(8)
        probe = tlb.probe
        insert = tlb.insert
        for vpn, tb in zip(stream, tbs):
            if not probe(vpn, tb).hit:
                insert(vpn, vpn + 1, tb)
        return float(n_ops)

    return body


# --------------------------------------------------------------------- #
# Engine: resource-pool grant churn
# --------------------------------------------------------------------- #
def _setup_resource_pool(quick: bool) -> Body:
    from ..engine.resources import ResourcePool

    n_grants = 10_000 if quick else 100_000
    rng = random.Random(5)
    arrivals = [0.0]
    for _ in range(n_grants - 1):
        arrivals.append(arrivals[-1] + rng.choice((0.0, 0.0, 0.0, 1.0, 25.0)))

    def body() -> float:
        pool = ResourcePool(8, 20.0)
        acquire = pool.acquire
        for now in arrivals:
            acquire(now)
        pool.reset()
        return float(n_grants)

    return body


# --------------------------------------------------------------------- #
# Arch: memory coalescer
# --------------------------------------------------------------------- #
def _setup_coalescer(quick: bool) -> Body:
    from ..arch.coalescer import coalesce, coalesce_strided

    n_warps = 2_000 if quick else 20_000
    rng = random.Random(42)
    divergent = [
        [rng.randrange(0, 1 << 20) for _ in range(32)] for _ in range(64)
    ]

    def body() -> float:
        lanes = 0
        for i in range(n_warps):
            # unit-stride (fully coalesced), large-stride, and divergent
            coalesce_strided(i * 128, 4, 32)
            coalesce_strided(i * 4096, 512, 32)
            coalesce(divergent[i % 64])
            lanes += 96
        return float(lanes)

    return body


# --------------------------------------------------------------------- #
# Meso: one full fig2 cell (bfs × baseline @ micro)
# --------------------------------------------------------------------- #
def _setup_fig2_cell(quick: bool) -> Body:
    from ..engine.supervision import CellSpec, simulate_cell
    from ..experiments.configs import get_config

    spec = CellSpec(
        "bfs", get_config("baseline"), "baseline", scale="micro", seed=0
    )

    def body() -> float:
        result = simulate_cell(spec)
        # work units = simulated cycles, so throughput is cycles/sec —
        # the number the ROADMAP's "faster cells" goal is about
        return float(result.cycles)

    return body


BENCHES: Dict[str, BenchSpec] = {
    spec.name: spec
    for spec in (
        BenchSpec(
            "event_queue_churn",
            "events",
            _setup_event_queue,
            "schedule/cancel/pop churn on the discrete-event heap",
        ),
        BenchSpec(
            "sim_drain",
            "events",
            _setup_sim_drain,
            "Simulator.run dispatch loop over self-rescheduling events",
        ),
        BenchSpec(
            "tlb_baseline",
            "probes",
            _setup_tlb_baseline,
            "VPN-indexed TLB probe/insert steady state (80/20 mix)",
        ),
        BenchSpec(
            "tlb_partitioned",
            "probes",
            _setup_tlb_partitioned,
            "TB-id-partitioned TLB with set sharing, 8 resident TBs",
        ),
        BenchSpec(
            "resource_pool",
            "grants",
            _setup_resource_pool,
            "8-server walker-pool grants, bursty arrivals",
        ),
        BenchSpec(
            "coalescer",
            "lanes",
            _setup_coalescer,
            "per-warp address coalescing, strided + divergent",
        ),
        BenchSpec(
            "fig2_cell",
            "cycles",
            _setup_fig2_cell,
            "full bfs × baseline cell at micro scale (sim cycles/sec)",
        ),
    )
}
