"""Reproducible micro/meso benchmark harness (``repro bench``).

The bench package pins a small set of deterministic workloads against
the simulator's hot paths — event-queue churn, TLB steady state,
resource-pool grants, coalescing, warp-scheduler arbitration, and one
full fig2 cell — and reports wall-clock percentiles plus throughput for
each.  Results are written as ``BENCH_<tag>.json`` so every perf PR
appends one point to the repo's performance trajectory, and
``tools/goldens/bench_baseline.json`` (recorded on the pre-optimization
tree) anchors the perf-regression gate in ``tests/test_perf_gate.py``.

Every bench is seeded and fixed-size: two runs of the same tree execute
byte-identical operation streams, so wall-time ratios between trees
measure the code, not the workload.
"""

from .benches import BENCHES, BenchSpec
from .harness import (
    BenchResult,
    compare_to_baseline,
    format_results,
    load_report,
    run_benches,
    write_report,
)

__all__ = [
    "BENCHES",
    "BenchSpec",
    "BenchResult",
    "compare_to_baseline",
    "format_results",
    "load_report",
    "run_benches",
    "write_report",
]
