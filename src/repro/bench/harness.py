"""Trial runner, percentile reporting, and BENCH_*.json serialization.

The harness runs each pinned bench for ``trials`` timed repetitions
(after one untimed warm-up that also JITs import paths and fills
allocator pools), reports p50/p95 wall time and median throughput, and
serializes everything to a ``BENCH_<tag>.json`` report.  Reports are
self-describing (schema, python version, quick flag) so trajectory
points from different PRs can be compared honestly — the perf gate
refuses to compare a quick report against a full baseline.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..engine.atomic import atomic_write
from .benches import BENCHES, BenchSpec

SCHEMA = "repro-bench/1"


def _percentile(sorted_values: List[float], p: float) -> float:
    """Linear-interpolated percentile of pre-sorted values, p in [0, 100]."""
    if not sorted_values:
        raise ValueError("no values")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass
class BenchResult:
    """Timing summary of one bench across its trials."""

    name: str
    unit: str
    #: work units one body invocation performs (identical across trials)
    ops: float
    #: per-trial wall seconds, in execution order
    wall: List[float] = field(default_factory=list)

    @property
    def wall_p50(self) -> float:
        return _percentile(sorted(self.wall), 50.0)

    @property
    def wall_p95(self) -> float:
        return _percentile(sorted(self.wall), 95.0)

    @property
    def throughput(self) -> float:
        """Median work units per second (robust to a noisy trial)."""
        p50 = self.wall_p50
        return self.ops / p50 if p50 > 0 else float("inf")

    def to_dict(self) -> Dict:
        return {
            "unit": self.unit,
            "ops": self.ops,
            "trials": len(self.wall),
            "wall_s": [round(w, 6) for w in self.wall],
            "wall_p50_s": round(self.wall_p50, 6),
            "wall_p95_s": round(self.wall_p95, 6),
            "throughput_per_s": round(self.throughput, 2),
        }


def run_benches(
    names: Optional[Iterable[str]] = None,
    trials: int = 5,
    quick: bool = False,
    progress=None,
) -> List[BenchResult]:
    """Run the selected benches and return one result per bench.

    ``names=None`` runs the full pinned suite in its registry order.
    Each bench gets a fresh setup per trial plus one untimed warm-up.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    selected: List[BenchSpec] = []
    for name in names if names is not None else BENCHES:
        if name not in BENCHES:
            raise ValueError(
                f"unknown bench {name!r} (available: {', '.join(BENCHES)})"
            )
        selected.append(BENCHES[name])
    results: List[BenchResult] = []
    for spec in selected:
        if progress is not None:
            progress(spec.name)
        body = spec.setup(quick)
        ops = body()  # warm-up, untimed; also pins the op count
        result = BenchResult(spec.name, spec.unit, ops)
        for _ in range(trials):
            start = time.perf_counter()
            done = body()
            elapsed = time.perf_counter() - start
            if done != ops:
                raise RuntimeError(
                    f"bench {spec.name} is not deterministic: "
                    f"{done} ops vs {ops} in warm-up"
                )
            result.wall.append(elapsed)
        results.append(result)
    return results


# --------------------------------------------------------------------- #
# Reports
# --------------------------------------------------------------------- #
def write_report(
    path: str,
    results: List[BenchResult],
    trials: int,
    quick: bool,
    tag: str,
) -> str:
    """Serialize results as a BENCH_*.json trajectory point."""
    payload = {
        "schema": SCHEMA,
        "tag": tag,
        "quick": quick,
        "trials": trials,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "benches": {r.name: r.to_dict() for r in results},
    }
    atomic_write(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: str) -> Dict:
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path!r} is not a {SCHEMA} report "
            f"(schema={payload.get('schema')!r})"
        )
    return payload


def compare_to_baseline(
    results: List[BenchResult], baseline: Dict
) -> Dict[str, float]:
    """Per-bench speedup vs a baseline report (baseline_p50 / current_p50).

    Benches absent from the baseline are skipped — a new bench has no
    trajectory yet.  >1.0 means the current tree is faster.
    """
    speedups: Dict[str, float] = {}
    benches = baseline.get("benches", {})
    for result in results:
        base = benches.get(result.name)
        if base is None:
            continue
        current = result.wall_p50
        if current <= 0:
            continue
        speedups[result.name] = base["wall_p50_s"] / current
    return speedups


def format_results(
    results: List[BenchResult],
    speedups: Optional[Dict[str, float]] = None,
) -> str:
    """Human-readable table, one row per bench."""
    header = (
        f"{'bench':20s} {'unit':8s} {'ops':>10s} {'p50 ms':>9s} "
        f"{'p95 ms':>9s} {'throughput/s':>14s}"
    )
    if speedups is not None:
        header += f" {'vs base':>8s}"
    lines = [header]
    for r in results:
        line = (
            f"{r.name:20s} {r.unit:8s} {r.ops:10.0f} "
            f"{r.wall_p50 * 1e3:9.2f} {r.wall_p95 * 1e3:9.2f} "
            f"{r.throughput:14.0f}"
        )
        if speedups is not None:
            sp = speedups.get(r.name)
            line += f" {sp:7.2f}x" if sp is not None else f" {'—':>8s}"
        lines.append(line)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Standalone entry point (``python -m repro.bench.harness``)."""
    from ..cli import main as cli_main

    return cli_main(["bench"] + list(argv or sys.argv[1:]))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
