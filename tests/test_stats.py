"""Unit tests for the statistics layer."""

from repro.engine.stats import Counter, Histogram, StatGroup, StatRegistry


def test_counter_increment_and_reset():
    c = Counter("hits")
    c.inc()
    c.inc(5)
    assert c.value == 6
    c.reset()
    assert c.value == 0


def test_histogram_totals_and_cdf():
    h = Histogram("dist")
    h.add(1, 2)
    h.add(3, 2)
    assert h.total == 4
    cdf = h.cdf()
    assert cdf == [(1, 0.5), (3, 1.0)]


def test_histogram_empty_cdf():
    assert Histogram("x").cdf() == []


def test_stat_group_reuses_counters():
    g = StatGroup("sm0")
    assert g.counter("hits") is g.counter("hits")
    g.counter("hits").inc(3)
    g.counter("total").inc(4)
    assert g.ratio("hits", "total") == 0.75


def test_ratio_zero_denominator():
    g = StatGroup("g")
    g.counter("hits")
    assert g.ratio("hits", "missing") == 0.0


def test_group_reset_clears_everything():
    g = StatGroup("g")
    g.counter("a").inc()
    g.histogram("h").add(1)
    g.reset()
    assert g.counter("a").value == 0
    assert g.histogram("h").total == 0


def test_registry_namespacing_and_dump():
    r = StatRegistry()
    r.group("sm0").counter("hits").inc(2)
    r.group("sm1").counter("hits").inc(7)
    dump = r.dump()
    assert dump["sm0"]["hits"] == 2
    assert dump["sm1"]["hits"] == 7


def test_registry_group_identity():
    r = StatRegistry()
    assert r.group("x") is r.group("x")


# ---------------------------------------------------------------------- #
# Percentiles / snapshots (telemetry satellites)
# ---------------------------------------------------------------------- #
def test_percentile_basics():
    h = Histogram("lat")
    for v in (1, 1, 2, 3, 100):
        h.add(v)
    assert h.percentile(0) == 1
    assert h.percentile(50) == 2
    assert h.percentile(100) == 100


def test_percentile_empty_and_bounds():
    h = Histogram("x")
    assert h.percentile(50) is None
    h.add(5)
    import pytest

    with pytest.raises(ValueError):
        h.percentile(-1)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_counter_value_is_non_creating():
    g = StatGroup("g")
    assert g.counter_value("nope") is None
    assert "nope" not in g.as_dict()
    g.counter("hits").inc(4)
    assert g.counter_value("hits") == 4


def test_group_snapshot_includes_histograms():
    g = StatGroup("g")
    g.counter("hits").inc(2)
    g.histogram("lat").add(7)
    snap = g.snapshot()
    assert snap["counters"] == {"hits": 2}
    assert snap["histograms"]["lat"] == {7: 1}


def test_registry_to_json_roundtrips():
    import json

    r = StatRegistry()
    r.group("sm0").counter("hits").inc(2)
    r.group("sm0").histogram("lat").add(3)
    payload = json.loads(r.to_json())
    assert payload["sm0"]["counters"]["hits"] == 2
    assert payload["sm0"]["histograms"]["lat"] == {"3": 1}
