"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bfs" in out
    assert "partition_sharing" in out
    assert "scales" in out


def test_run_command(capsys):
    assert main(["run", "nw", "--scale", "micro"]) == 0
    out = capsys.readouterr().out
    assert "L1 TLB hit rate" in out
    assert "TBs completed" in out


def test_run_with_named_config(capsys):
    assert main(
        ["run", "nw", "--scale", "micro", "--config", "partition_sharing"]
    ) == 0
    assert "partition_sharing" in capsys.readouterr().out


def test_compare_command(capsys):
    assert main(
        ["compare", "nw", "--scale", "micro",
         "--configs", "baseline", "partition"]
    ) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "partition" in out
    assert "1.000" in out  # baseline normalizes to itself


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nope"])


def test_unknown_config_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "bfs", "--config", "nope"])


def test_command_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
