"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bfs" in out
    assert "partition_sharing" in out
    assert "scales" in out


def test_run_command(capsys):
    assert main(["run", "nw", "--scale", "micro"]) == 0
    out = capsys.readouterr().out
    assert "L1 TLB hit rate" in out
    assert "TBs completed" in out


def test_run_with_named_config(capsys):
    assert main(
        ["run", "nw", "--scale", "micro", "--config", "partition_sharing"]
    ) == 0
    assert "partition_sharing" in capsys.readouterr().out


def test_compare_command(capsys):
    assert main(
        ["compare", "nw", "--scale", "micro",
         "--configs", "baseline", "partition"]
    ) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "partition" in out
    assert "1.000" in out  # baseline normalizes to itself


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nope"])


def test_unknown_config_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "bfs", "--config", "nope"])


def test_command_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


class TestFailureContract:
    """Taxonomy errors exit with class-specific codes + a JSON line."""

    def test_injected_livelock_exit_code_and_json(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "nw:baseline:livelock")
        code = main(["run", "nw", "--scale", "micro"])
        assert code == 5
        err = capsys.readouterr().err.strip().splitlines()[-1]
        payload = json.loads(err)
        assert payload["error"] == "livelock"
        assert payload["exit_code"] == 5
        assert "livelock" in payload["message"]

    def test_injected_crash_exhausts_retries(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "nw:baseline:crash")
        code = main(["run", "nw", "--scale", "micro"])
        assert code == 7
        payload = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
        assert payload["error"] == "worker_crash"

    def test_crash_recovered_by_retry(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "nw:baseline:crash:1")
        assert main(["run", "nw", "--scale", "micro"]) == 0
        assert "TBs completed" in capsys.readouterr().out

    def test_timeout_flag_supervises(self, capsys):
        assert main(["run", "nw", "--scale", "micro", "--timeout", "120"]) == 0
        assert "TBs completed" in capsys.readouterr().out


class TestReportFlags:
    def test_report_parser_accepts_resilience_flags(self):
        args = build_parser().parse_args(
            ["report", "--scale", "micro", "--timeout", "5",
             "--checkpoint", "x.jsonl", "--resume", "--strict",
             "--benchmarks", "nw", "bfs"]
        )
        assert args.timeout == 5.0
        assert args.checkpoint == "x.jsonl"
        assert args.resume and args.strict
        assert args.benchmarks == ["nw", "bfs"]


class TestTelemetryFlags:
    """--trace / --sample-every and the trace subcommand."""

    def test_run_writes_trace_and_manifest(self, capsys, tmp_path):
        trace = str(tmp_path / "t.json")
        assert main(
            ["run", "nw", "--scale", "micro",
             "--trace", trace, "--sample-every", "500"]
        ) == 0
        out = capsys.readouterr().out
        assert "samples" in out and trace in out
        payload = json.load(open(trace))
        cats = {e.get("cat") for e in payload["traceEvents"]}
        assert {"tb", "tlb", "walk"} <= cats
        manifest = json.load(open(trace + ".manifest.json"))
        assert manifest["kind"] == "repro-manifest"
        assert manifest["sample_every"] == 500

    def test_trace_subcommand_summarizes(self, capsys, tmp_path):
        trace = str(tmp_path / "t.json")
        assert main(["run", "nw", "--scale", "micro", "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["trace", trace, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "events" in out and "tb spans" in out

    def test_trace_subcommand_rejects_garbage(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["trace", str(bad)]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_compare_merges_cells_into_one_trace(self, capsys, tmp_path):
        trace = str(tmp_path / "cmp.json")
        assert main(
            ["compare", "nw", "--scale", "micro",
             "--configs", "baseline", "partition", "--trace", trace]
        ) == 0
        events = json.load(open(trace))["traceEvents"]
        assert {e["pid"] for e in events} == {0, 1}
        labels = {e["args"]["name"] for e in events
                  if e.get("name") == "process_name"}
        assert labels == {"nw:baseline", "nw:partition"}


class TestResilienceFlagParity:
    """run and compare accept the same flags report always had."""

    def test_run_checkpoint_resume_cycle(self, capsys, tmp_path):
        ckpt = str(tmp_path / "c.jsonl")
        assert main(
            ["run", "nw", "--scale", "micro", "--checkpoint", ckpt]
        ) == 0
        capsys.readouterr()
        assert json.load(open(ckpt + ".manifest.json"))["seed"] == 0
        assert main(
            ["run", "nw", "--scale", "micro",
             "--checkpoint", ckpt, "--resume"]
        ) == 0
        assert "TBs completed" in capsys.readouterr().out

    def test_all_simulating_commands_share_exec_flags(self):
        parser = build_parser()
        for argv in (
            ["run", "nw", "--timeout", "5", "--checkpoint", "x", "--resume"],
            ["compare", "nw", "--timeout", "5", "--checkpoint", "x",
             "--resume"],
            ["report", "--timeout", "5", "--checkpoint", "x", "--resume"],
        ):
            args = parser.parse_args(argv)
            assert args.timeout == 5.0
            assert args.checkpoint == "x"
            assert args.resume is True

    def test_resume_defaults_checkpoint_path(self, capsys, tmp_path,
                                             monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["run", "nw", "--scale", "micro", "--resume"]) == 0
        capsys.readouterr()
        assert (tmp_path / ".repro_checkpoint.micro.jsonl").exists()


class TestServiceCli:
    """CLI surface of the sweep service and daemon commands."""

    def test_status_missing_journal_exits_12_one_line(self, capsys,
                                                      tmp_path):
        code = main(
            ["status", "--scale", "micro",
             "--service-dir", str(tmp_path / "nowhere")]
        )
        assert code == 12
        err = capsys.readouterr().err.strip().splitlines()
        assert len(err) == 1  # one diagnostic line, never a traceback
        payload = json.loads(err[0])
        assert payload["error"] == "journal"
        assert payload["exit_code"] == 12
        assert "no journal" in payload["message"]

    def test_status_corrupt_header_exits_12(self, capsys, tmp_path):
        svc = tmp_path / "svc"
        svc.mkdir()
        (svc / "journal.jsonl").write_bytes(b"\xff\xfe garbage, not JSON\n")
        code = main(
            ["status", "--scale", "micro", "--service-dir", str(svc)]
        )
        assert code == 12
        err = capsys.readouterr().err.strip().splitlines()
        assert len(err) == 1
        payload = json.loads(err[0])
        assert payload["error"] == "journal"
        assert "unreadable or corrupt" in payload["message"]

    def test_submit_and_serve_roundtrip(self, capsys, tmp_path):
        svc = str(tmp_path / "svc")
        assert main(
            ["submit", "nw", "--configs", "baseline", "--scale", "micro",
             "--service-dir", svc]
        ) == 0
        assert "submitted" in capsys.readouterr().out
        assert main(
            ["serve", "--scale", "micro", "--service-dir", svc]
        ) == 0
        assert "done=1" in capsys.readouterr().out
        assert main(
            ["status", "--scale", "micro", "--service-dir", svc]
        ) == 0
        assert "queue" in capsys.readouterr().out

    def test_submit_deadline_and_priority_flags(self, capsys, tmp_path):
        svc = str(tmp_path / "svc")
        assert main(
            ["submit", "nw", "--configs", "baseline", "--scale", "micro",
             "--service-dir", svc, "--priority", "3", "--deadline", "900"]
        ) == 0
        capsys.readouterr()
        from repro.service import SweepService

        service = SweepService(svc, scale="micro", seed=0)
        service.recover(readonly=True)
        service.close()
        job = service.state.jobs["nw:baseline"]
        assert job.priority == 3
        assert job.deadline_unix > 0
        assert job.idempotency_key

    def test_daemon_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--daemon", "--scale", "micro",
             "--client-ttl", "5", "--socket", "/tmp/x.sock"]
        )
        assert args.daemon and args.client_ttl == 5.0
        assert args.socket == "/tmp/x.sock"
        args = parser.parse_args(
            ["submit", "nw", "--daemon", "--wait", "--priority", "2"]
        )
        assert args.daemon and args.wait and args.priority == 2
        args = parser.parse_args(["cancel", "nw:baseline", "--daemon"])
        assert args.job_id == "nw:baseline"
        args = parser.parse_args(
            ["wait", "nw:baseline", "--deadline", "30"]
        )
        assert args.deadline == 30.0

    def test_wait_against_dead_daemon_exits_protocol(self, capsys,
                                                     tmp_path):
        code = main(
            ["wait", "nw:baseline", "--scale", "micro",
             "--service-dir", str(tmp_path / "svc")]
        )
        assert code == 14  # protocol: daemon unreachable
        payload = json.loads(capsys.readouterr().err.strip())
        assert payload["error"] == "protocol"
