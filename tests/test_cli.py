"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bfs" in out
    assert "partition_sharing" in out
    assert "scales" in out


def test_run_command(capsys):
    assert main(["run", "nw", "--scale", "micro"]) == 0
    out = capsys.readouterr().out
    assert "L1 TLB hit rate" in out
    assert "TBs completed" in out


def test_run_with_named_config(capsys):
    assert main(
        ["run", "nw", "--scale", "micro", "--config", "partition_sharing"]
    ) == 0
    assert "partition_sharing" in capsys.readouterr().out


def test_compare_command(capsys):
    assert main(
        ["compare", "nw", "--scale", "micro",
         "--configs", "baseline", "partition"]
    ) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "partition" in out
    assert "1.000" in out  # baseline normalizes to itself


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nope"])


def test_unknown_config_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "bfs", "--config", "nope"])


def test_command_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


class TestFailureContract:
    """Taxonomy errors exit with class-specific codes + a JSON line."""

    def test_injected_livelock_exit_code_and_json(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "nw:baseline:livelock")
        code = main(["run", "nw", "--scale", "micro"])
        assert code == 5
        err = capsys.readouterr().err.strip().splitlines()[-1]
        payload = json.loads(err)
        assert payload["error"] == "livelock"
        assert payload["exit_code"] == 5
        assert "livelock" in payload["message"]

    def test_injected_crash_exhausts_retries(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "nw:baseline:crash")
        code = main(["run", "nw", "--scale", "micro"])
        assert code == 7
        payload = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
        assert payload["error"] == "worker_crash"

    def test_crash_recovered_by_retry(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "nw:baseline:crash:1")
        assert main(["run", "nw", "--scale", "micro"]) == 0
        assert "TBs completed" in capsys.readouterr().out

    def test_timeout_flag_supervises(self, capsys):
        assert main(["run", "nw", "--scale", "micro", "--timeout", "120"]) == 0
        assert "TBs completed" in capsys.readouterr().out


class TestReportFlags:
    def test_report_parser_accepts_resilience_flags(self):
        args = build_parser().parse_args(
            ["report", "--scale", "micro", "--timeout", "5",
             "--checkpoint", "x.jsonl", "--resume", "--strict",
             "--benchmarks", "nw", "bfs"]
        )
        assert args.timeout == 5.0
        assert args.checkpoint == "x.jsonl"
        assert args.resume and args.strict
        assert args.benchmarks == ["nw", "bfs"]
