"""Unit tests for queue state machine, admission control, and leases."""

import pytest

from repro.engine.errors import JournalError, SanitizerError
from repro.service import (
    DONE,
    FAILED,
    LEASED,
    QUARANTINED,
    RUNNING,
    SUBMITTED,
    AdmissionController,
    AdmissionPolicy,
    Job,
    LeaseTable,
    QueueState,
    check_service_invariants,
)

# --------------------------------------------------------------------- #
# Reducer / state machine
# --------------------------------------------------------------------- #


def rec(seq, rtype, payload):
    return {"seq": seq, "type": rtype, "payload": payload}


def submit_record(seq, job_id="bfs:baseline", benchmark="bfs"):
    job = Job(job_id=job_id, benchmark=benchmark, config_name="baseline")
    return rec(seq, "submit", {"job": job.to_payload()})


def test_happy_path_to_done():
    state = QueueState()
    state.apply(submit_record(2))
    state.apply(rec(3, "lease", {"job_id": "bfs:baseline", "owner": "serve-1",
                                 "unix": 123.0}))
    state.apply(rec(4, "start", {"job_id": "bfs:baseline"}))
    state.apply(rec(5, "done", {"job_id": "bfs:baseline",
                                "result": {"cycles": 10.0}, "attempts": 1}))
    job = state.jobs["bfs:baseline"]
    assert job.state == DONE
    assert job.result == {"cycles": 10.0}
    assert job.owner == ""
    assert state.counters["queued"] == 1
    assert state.counters["leased"] == 1
    assert state.counters["done"] == 1


def test_fail_path_records_class_and_message():
    state = QueueState()
    state.apply(submit_record(2))
    state.apply(rec(3, "lease", {"job_id": "bfs:baseline", "owner": "serve-1",
                                 "unix": 0.0}))
    state.apply(rec(4, "start", {"job_id": "bfs:baseline"}))
    state.apply(rec(5, "retry", {"job_id": "bfs:baseline", "attempt": 0,
                                 "error_class": "worker_crash"}))
    state.apply(rec(6, "fail", {"job_id": "bfs:baseline",
                                "error_class": "worker_crash",
                                "message": "died", "attempts": 2}))
    job = state.jobs["bfs:baseline"]
    assert job.state == FAILED
    assert job.marker == "FAILED(worker_crash)"
    assert job.attempts == 2
    assert state.counters["retried"] == 1


def test_quarantine_marker_carries_cause():
    state = QueueState()
    state.apply(submit_record(2))
    state.apply(rec(3, "quarantine", {"job_id": "bfs:baseline",
                                      "cause_class": "livelock",
                                      "message": "breaker open"}))
    job = state.jobs["bfs:baseline"]
    assert job.state == QUARANTINED
    assert job.marker == "FAILED(quarantined:livelock)"


def test_reclaim_returns_to_submitted_preserving_attempts():
    state = QueueState()
    state.apply(submit_record(2))
    state.apply(rec(3, "lease", {"job_id": "bfs:baseline", "owner": "serve-1",
                                 "unix": 0.0}))
    state.apply(rec(4, "start", {"job_id": "bfs:baseline"}))
    state.apply(rec(5, "retry", {"job_id": "bfs:baseline", "attempt": 0,
                                 "error_class": "timeout"}))
    state.apply(rec(6, "reclaim", {"job_id": "bfs:baseline"}))
    job = state.jobs["bfs:baseline"]
    assert job.state == SUBMITTED
    assert job.owner == ""
    assert job.attempts == 1  # retries survive reclamation
    assert state.pending()[0].job_id == "bfs:baseline"


def test_illegal_transition_raises():
    state = QueueState()
    state.apply(submit_record(2))
    with pytest.raises(JournalError, match="illegal state transition"):
        state.apply(rec(3, "done", {"job_id": "bfs:baseline",
                                    "result": {}, "attempts": 1}))


def test_duplicate_submit_raises():
    state = QueueState()
    state.apply(submit_record(2))
    with pytest.raises(JournalError, match="duplicate"):
        state.apply(submit_record(3))


def test_unknown_job_raises():
    state = QueueState()
    with pytest.raises(JournalError, match="unknown job"):
        state.apply(rec(2, "lease", {"job_id": "ghost", "owner": "x",
                                     "unix": 0.0}))


def test_unknown_record_type_raises():
    state = QueueState()
    with pytest.raises(JournalError, match="unknown journal record type"):
        state.apply(rec(2, "frobnicate", {}))


def test_pending_is_fifo():
    state = QueueState()
    state.apply(submit_record(2, "bfs:baseline", "bfs"))
    state.apply(submit_record(3, "atax:baseline", "atax"))
    state.apply(submit_record(4, "nw:baseline", "nw"))
    assert [j.job_id for j in state.pending()] == [
        "bfs:baseline", "atax:baseline", "nw:baseline",
    ]


def test_shed_counts_without_entering_queue():
    state = QueueState()
    state.apply(rec(2, "shed", {"job_id": "bfs:baseline",
                                "reason": "load shed"}))
    assert state.counters["shed"] == 1
    assert state.jobs == {}


def test_snapshot_round_trip():
    state = QueueState()
    state.apply(submit_record(2, "bfs:baseline", "bfs"))
    state.apply(submit_record(3, "atax:baseline", "atax"))
    state.apply(rec(4, "lease", {"job_id": "bfs:baseline", "owner": "serve-9",
                                 "unix": 1.5}))
    snapshot = state.snapshot_payload({"bfs": {"state": "CLOSED"}})

    restored = QueueState()
    restored.apply(rec(10, "snapshot", snapshot))
    assert restored.order == state.order
    assert restored.counters == state.counters
    assert restored.jobs["bfs:baseline"].state == LEASED
    assert restored.jobs["bfs:baseline"].leased_unix == 1.5
    assert restored.breaker_payloads == {"bfs": {"state": "CLOSED"}}


def test_clean_shutdown_flag_tracks_last_record():
    state = QueueState()
    state.apply(submit_record(2))
    state.apply(rec(3, "shutdown", {"clean": True, "pending": 1}))
    assert state.clean_shutdown
    state.apply(submit_record(4, "atax:baseline", "atax"))
    assert not state.clean_shutdown


# --------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------- #


def make_admission(max_depth=10, high=4, low=2):
    return AdmissionController(
        AdmissionPolicy(max_depth=max_depth, high_watermark=high,
                        low_watermark=low)
    )


def test_admits_below_high_watermark():
    admission = make_admission()
    decision = admission.decide(3)
    assert decision.admitted and decision.reason == ""


def test_sheds_at_high_watermark_with_reason():
    admission = make_admission()
    decision = admission.decide(4)
    assert not decision.admitted
    assert "load shed" in decision.reason


def test_hard_cap_reason_differs():
    admission = make_admission()
    decision = admission.decide(10)
    assert not decision.admitted
    assert "hard depth cap" in decision.reason


def test_backpressure_hysteresis():
    admission = make_admission(high=4, low=2)
    assert not admission.backpressure(3)
    assert admission.backpressure(4)      # raised at high
    assert admission.backpressure(3)      # held between the watermarks
    assert not admission.backpressure(2)  # cleared at low
    assert not admission.backpressure(3)  # stays clear until high again


def test_admission_policy_validation():
    with pytest.raises(ValueError):
        AdmissionPolicy(max_depth=10, high_watermark=11, low_watermark=1)
    with pytest.raises(ValueError):
        AdmissionPolicy(max_depth=10, high_watermark=4, low_watermark=5)
    with pytest.raises(ValueError):
        AdmissionPolicy(max_depth=10, high_watermark=4, low_watermark=0)


# --------------------------------------------------------------------- #
# Leases
# --------------------------------------------------------------------- #


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_lease_grant_heartbeat_expiry():
    clock = FakeClock()
    table = LeaseTable(ttl=10.0, clock=clock)
    table.grant("bfs:baseline", "serve-1")
    clock.now = 8.0
    table.heartbeat("bfs:baseline")
    clock.now = 15.0
    assert table.expired() == []  # heartbeat at t=8 keeps it live to 18
    clock.now = 19.0
    assert [l.job_id for l in table.expired()] == ["bfs:baseline"]
    assert table.ages() == {"bfs:baseline": 19.0}


def test_lease_double_grant_raises():
    table = LeaseTable()
    table.grant("a", "serve-1")
    with pytest.raises(JournalError, match="already leased"):
        table.grant("a", "serve-2")


def test_lease_release_unknown_raises():
    with pytest.raises(JournalError, match="without a lease"):
        LeaseTable().release("ghost")


def test_lease_heartbeat_unknown_raises():
    with pytest.raises(JournalError, match="without a lease"):
        LeaseTable().heartbeat("ghost")


# --------------------------------------------------------------------- #
# Service invariants
# --------------------------------------------------------------------- #


def coherent_state():
    state = QueueState()
    state.apply(submit_record(2))
    state.apply(rec(3, "lease", {"job_id": "bfs:baseline", "owner": "serve-1",
                                 "unix": 0.0}))
    leases = LeaseTable()
    leases.grant("bfs:baseline", "serve-1")
    return state, leases


def test_invariants_pass_on_coherent_state():
    check_service_invariants(*coherent_state())


def test_invariant_lease_missing():
    state, _ = coherent_state()
    with pytest.raises(SanitizerError, match="service.lease.missing"):
        check_service_invariants(state, LeaseTable())


def test_invariant_lease_orphan():
    state = QueueState()
    leases = LeaseTable()
    leases.grant("ghost", "serve-1")
    with pytest.raises(SanitizerError, match="service.lease.orphan"):
        check_service_invariants(state, leases)


def test_invariant_lease_owner_mismatch():
    state, _ = coherent_state()
    leases = LeaseTable()
    leases.grant("bfs:baseline", "serve-other")
    with pytest.raises(SanitizerError, match="service.lease.owner"):
        check_service_invariants(state, leases)


def test_invariant_counter_desync():
    state, leases = coherent_state()
    state.counters["done"] = 5
    with pytest.raises(SanitizerError, match="service.counter.desync"):
        check_service_invariants(state, leases)


def test_invariant_state_unknown():
    state, leases = coherent_state()
    state.jobs["bfs:baseline"].state = "LIMBO"
    with pytest.raises(SanitizerError, match="service.state.unknown"):
        check_service_invariants(state, leases)
