"""Tests for the injectable storage shim and its disk-fault taxonomy."""

import errno
import json
import os

import pytest

from repro.engine.errors import ConfigError, JournalError
from repro.engine.storage import (
    FAULT_ENV_VAR,
    DiskFaultKind,
    DiskFaultSpec,
    SimulatedCrash,
    Storage,
    parse_disk_spec,
)


def spec(layer, kind, nth=1):
    return DiskFaultSpec(layer, DiskFaultKind(kind), nth)


# --------------------------------------------------------------------- #
# Spec grammar
# --------------------------------------------------------------------- #
class TestSpecGrammar:
    def test_parse_round_trip(self):
        for text in (
            "disk:journal:enospc",
            "disk:results:torn:3",
            "disk:*:fsync",
            "disk:checkpoint:crash:2",
        ):
            assert parse_disk_spec(text).to_part() == text

    def test_rejects_garbage(self):
        for text in (
            "disk:journal",              # missing kind
            "disk:journal:sparks",       # unknown kind
            "disk:journal:eio:0",        # nth must be >= 1
            "disk:journal:eio:x",        # non-numeric nth
            "disk:a:b:c:d",              # too many fields
        ):
            with pytest.raises(ConfigError):
                parse_disk_spec(text)


# --------------------------------------------------------------------- #
# Each fault kind provably fires
# --------------------------------------------------------------------- #
class TestFaultKinds:
    def test_enospc_write_leaves_no_bytes(self, tmp_path):
        store = Storage(faults=[spec("journal", "enospc")])
        path = str(tmp_path / "f")
        with pytest.raises(OSError) as err:
            store.write_file(path, b"payload", "journal")
        assert err.value.errno == errno.ENOSPC
        # the refused write landed nothing — not even a truncating open
        assert not os.path.exists(path)

    def test_eio_read(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"data")
        store = Storage(faults=[spec("results", "eio")])
        with pytest.raises(OSError) as err:
            store.read_bytes(str(path), "results")
        assert err.value.errno == errno.EIO
        # single-shot: the retry reads clean
        assert store.read_bytes(str(path), "results") == b"data"

    def test_torn_write_persists_half(self, tmp_path):
        store = Storage(faults=[spec("results", "torn")])
        path = str(tmp_path / "f")
        with pytest.raises(OSError) as err:
            store.write_file(path, b"0123456789", "results")
        assert err.value.errno == errno.EIO
        with open(path, "rb") as handle:
            assert handle.read() == b"01234"

    def test_fsyncgate_drops_unflushed_bytes(self, tmp_path):
        """A failed fsync loses the dirty bytes AND the retry
        'succeeds' without them — the kernel marked the pages clean
        when it reported the error (fsyncgate semantics)."""
        store = Storage(faults=[spec("journal", "fsync", nth=2)])
        path = str(tmp_path / "f")
        handle = store.open_append(path, "journal")
        store.write_handle(handle, b"first\n", "journal", path)
        store.fsync_handle(handle, "journal", path)  # durable watermark
        store.write_handle(handle, b"second\n", "journal", path)
        with pytest.raises(OSError) as err:
            store.fsync_handle(handle, "journal", path)
        assert err.value.errno == errno.EIO
        # the unflushed record is gone...
        with open(path, "rb") as probe:
            assert probe.read() == b"first\n"
        # ...and a retried fsync reports success without resurrecting it
        store.fsync_handle(handle, "journal", path)
        handle.close()
        with open(path, "rb") as probe:
            assert probe.read() == b"first\n"

    def test_crash_invokes_handler_mid_write(self, tmp_path):
        store = Storage(
            faults=[spec("journal", "crash")],
            crash=lambda: (_ for _ in ()).throw(SimulatedCrash("boom")),
        )
        path = str(tmp_path / "f")
        with pytest.raises(SimulatedCrash):
            store.write_file(path, b"0123456789", "journal")
        # the torn prefix is on disk, exactly like a real SIGKILL
        with open(path, "rb") as handle:
            assert handle.read() == b"01234"


# --------------------------------------------------------------------- #
# Matching mechanics
# --------------------------------------------------------------------- #
class TestMatching:
    def test_nth_op_counts_per_layer_and_kind(self, tmp_path):
        store = Storage(faults=[spec("journal", "enospc", nth=3)])
        path = str(tmp_path / "f")
        store.write_file(path, b"a", "journal")
        store.write_file(path, b"b", "results")  # other layer: no count
        store.write_file(path, b"c", "journal")
        with pytest.raises(OSError):
            store.write_file(path, b"d", "journal")

    def test_wildcard_layer_counts_across_layers(self, tmp_path):
        store = Storage(faults=[spec("*", "enospc", nth=2)])
        path = str(tmp_path / "f")
        store.write_file(path, b"a", "journal")
        with pytest.raises(OSError):
            store.write_file(path, b"b", "results")

    def test_single_shot(self, tmp_path):
        store = Storage(faults=[spec("journal", "enospc")])
        path = str(tmp_path / "f")
        with pytest.raises(OSError):
            store.write_file(path, b"a", "journal")
        store.write_file(path, b"b", "journal")
        with open(path, "rb") as handle:
            assert handle.read() == b"b"

    def test_env_specs_fold_in(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "disk:journal:enospc")
        store = Storage()
        with pytest.raises(OSError):
            store.write_file(str(tmp_path / "f"), b"a", "journal")

    def test_env_mixed_with_process_specs_ignored(
        self, tmp_path, monkeypatch
    ):
        # process-fault parts in the same variable are not disk specs
        monkeypatch.setenv(
            FAULT_ENV_VAR, "nw:baseline:crash;disk:results:eio"
        )
        path = tmp_path / "f"
        path.write_bytes(b"x")
        store = Storage()
        store.read_bytes(str(path), "journal")  # other layer: clean
        with pytest.raises(OSError):
            store.read_bytes(str(path), "results")

    def test_recording_pass_through(self, tmp_path):
        ops = []
        store = Storage(record=ops.append)
        path = str(tmp_path / "f")
        store.write_file(path, b"data", "results")
        store.fsync_path(path, "results")
        store.replace(path, str(tmp_path / "g"), "results")
        assert [op.kind for op in ops] == ["write", "fsync", "rename"]
        assert all(op.mutating_index >= 0 for op in ops)
        assert (tmp_path / "g").read_bytes() == b"data"

    def test_crash_at_op_boundary(self, tmp_path):
        def boom():
            raise SimulatedCrash("at boundary")

        store = Storage(crash=boom, crash_at_op=1)
        path = str(tmp_path / "f")
        store.write_file(path, b"first", "journal")  # mutating op 0
        with pytest.raises(SimulatedCrash):
            store.write_file(path, b"second", "journal")
        # crash fired *before* the op: the first write is untouched
        with open(path, "rb") as handle:
            assert handle.read() == b"first"


# --------------------------------------------------------------------- #
# End-to-end through a real persistence layer and the CLI
# --------------------------------------------------------------------- #
class TestLayerIntegration:
    def test_journal_append_enospc_surfaces_as_journal_error(
        self, tmp_path
    ):
        from repro.service import Journal

        # writes: header=1, submit=2, lease=3 — fault the lease append
        store = Storage(faults=[spec("journal", "enospc", nth=3)])
        journal = Journal(
            str(tmp_path / "j.jsonl"), scale="micro", seed=0, storage=store
        )
        journal.append("submit", {"job": {"job_id": "a"}})
        with pytest.raises(JournalError):
            journal.append("lease", {"job_id": "a"})
        # the refused record was rolled back: the log replays cleanly
        # and the next append lands with a fresh handle
        journal.append("lease", {"job_id": "a"})
        journal.close()
        replayed = Journal(
            str(tmp_path / "j.jsonl"), scale="micro", seed=0
        ).replay()
        assert [r["type"] for r in replayed] == ["submit", "lease"]

    def test_journal_fsyncgate_append_is_fully_rolled_back(self, tmp_path):
        from repro.service import Journal

        # fsyncs: header=1, submit=2, lease=3 — fault the lease fsync
        store = Storage(faults=[spec("journal", "fsync", nth=3)])
        journal = Journal(
            str(tmp_path / "j.jsonl"), scale="micro", seed=0, storage=store
        )
        journal.append("submit", {"job": {"job_id": "a"}})
        with pytest.raises(JournalError):
            journal.append("lease", {"job_id": "a"})
        journal.close()
        replayed = Journal(
            str(tmp_path / "j.jsonl"), scale="micro", seed=0
        ).replay()
        assert [r["type"] for r in replayed] == ["submit"]

    def test_status_read_eio_exits_journal_class(
        self, tmp_path, monkeypatch, capsys
    ):
        """An injected EIO on the recovery read surfaces through the
        real CLI as the journal taxonomy class (exit 12)."""
        from repro.cli import main

        service_dir = str(tmp_path / "svc")
        assert main(
            ["submit", "bfs", "--scale", "micro",
             "--service-dir", service_dir]
        ) == 0
        capsys.readouterr()
        monkeypatch.setenv(FAULT_ENV_VAR, "disk:journal:eio")
        code = main(
            ["status", "--scale", "micro", "--service-dir", service_dir]
        )
        err = capsys.readouterr().err
        assert code == 12
        assert json.loads(err.strip().splitlines()[-1])["error"] == "journal"

    def test_result_cache_put_is_best_effort(self, tmp_path):
        from repro.service.results import ResultCache

        store = Storage(faults=[spec("results", "torn")])
        cache = ResultCache(str(tmp_path), storage=store)
        cache.put("k" * 16, {"x": 1})
        assert cache.store_failures == 1
        # no torn entry became visible; the key simply misses
        assert cache.get("k" * 16) is None
        assert [
            n for n in os.listdir(tmp_path) if not n.endswith(".invalid")
        ] == []

    def test_pass_through_without_faults_is_invisible(self, tmp_path):
        """No faults configured: goldens written/read through the shim
        are byte-identical to a direct write (pass-through guarantee)."""
        from repro.engine.atomic import atomic_write

        direct = tmp_path / "direct.json"
        shimmed = tmp_path / "shimmed.json"
        payload = json.dumps({"cells": {"a": 1.0}}, indent=2)
        direct.write_text(payload)
        atomic_write(str(shimmed), payload, layer="goldens")
        assert shimmed.read_bytes() == direct.read_bytes()
