"""Unit tests for serializing resources (ports, walker pools)."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.resources import ResourcePool, SerialResource


class TestSerialResource:
    def test_idle_resource_grants_immediately(self):
        port = SerialResource(occupancy=2.0)
        assert port.acquire(10.0) == 10.0

    def test_back_to_back_requests_serialize(self):
        port = SerialResource(occupancy=2.0)
        assert port.acquire(0.0) == 0.0
        assert port.acquire(0.0) == 2.0
        assert port.acquire(0.0) == 4.0

    def test_gap_larger_than_occupancy_leaves_no_queue(self):
        port = SerialResource(occupancy=2.0)
        port.acquire(0.0)
        assert port.acquire(100.0) == 100.0

    def test_negative_occupancy_rejected(self):
        with pytest.raises(ValueError):
            SerialResource(-1.0)

    def test_reset_clears_backlog(self):
        port = SerialResource(occupancy=10.0)
        port.acquire(0.0)
        port.reset()
        assert port.acquire(0.0) == 0.0

    @given(
        st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=100),
        st.floats(min_value=0.5, max_value=10),
    )
    def test_property_grants_are_monotonic_and_spaced(self, arrivals, occ):
        port = SerialResource(occupancy=occ)
        grants = [port.acquire(t) for t in sorted(arrivals)]
        for a, b in zip(grants, grants[1:]):
            assert b >= a + occ - 1e-9
        for arrival, grant in zip(sorted(arrivals), grants):
            assert grant >= arrival


class TestResourcePool:
    def test_parallel_servers_do_not_queue(self):
        pool = ResourcePool(4, service_time=100.0)
        done = [pool.acquire(0.0) for _ in range(4)]
        assert done == [100.0] * 4

    def test_excess_requests_queue_on_earliest_server(self):
        pool = ResourcePool(2, service_time=100.0)
        assert pool.acquire(0.0) == 100.0
        assert pool.acquire(0.0) == 100.0
        assert pool.acquire(0.0) == 200.0  # waits for a server

    def test_staggered_arrivals(self):
        pool = ResourcePool(1, service_time=10.0)
        assert pool.acquire(0.0) == 10.0
        assert pool.acquire(5.0) == 20.0
        assert pool.acquire(50.0) == 60.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ResourcePool(0, 1.0)
        with pytest.raises(ValueError):
            ResourcePool(1, -1.0)

    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=60),
    )
    def test_property_throughput_bounded_by_servers(self, n, arrivals):
        """No time window of length service_time completes more than n."""
        service = 10.0
        pool = ResourcePool(n, service_time=service)
        completions = sorted(pool.acquire(t) for t in sorted(arrivals))
        for i, start in enumerate(completions):
            in_window = sum(
                1 for c in completions if start <= c < start + service - 1e-9
            )
            assert in_window <= n


class TestResourcePoolTwoGroupRepresentation:
    """Boundary tests for the O(1) two-group fast path of ResourcePool.

    The pool tracks (free-time, count) for up to two groups of servers
    and only degrades to a heap on a third distinct free time; these
    tests walk each transition of that representation.
    """

    def test_same_time_burst_collapses_to_one_group(self):
        pool = ResourcePool(3, service_time=10.0)
        # full burst: all servers busy until 10, one uniform group again
        assert [pool.acquire(0.0) for _ in range(3)] == [10.0] * 3
        # second full burst folds onto the busy group, never the heap
        assert [pool.acquire(0.0) for _ in range(3)] == [20.0] * 3

    def test_partial_burst_keeps_two_groups(self):
        pool = ResourcePool(4, service_time=10.0)
        assert pool.acquire(0.0) == 10.0
        # groups now: 3 free at 0.0, 1 busy until 10.0
        assert pool.acquire(5.0) == 15.0
        assert pool.acquire(5.0) == 15.0
        assert pool.acquire(5.0) == 15.0
        # all four busy: earliest completion is the first server
        assert pool.acquire(5.0) == 20.0

    def test_degrades_to_heap_on_third_distinct_time(self):
        pool = ResourcePool(3, service_time=7.0)
        assert pool.acquire(0.0) == 7.0
        assert pool.acquire(1.0) == 8.0   # third distinct free time
        assert pool.acquire(2.0) == 9.0
        # heap mode must still grant earliest-server-first
        assert pool.acquire(2.0) == 14.0
        assert pool.acquire(2.0) == 15.0

    def test_zero_service_time(self):
        pool = ResourcePool(2, service_time=0.0)
        assert pool.acquire(0.0) == 0.0
        assert pool.acquire(0.0) == 0.0
        assert pool.acquire(0.0) == 0.0  # instant turnaround, never queues
        assert pool.acquire(3.5) == 3.5

    def test_reset_restores_all_servers(self):
        pool = ResourcePool(2, service_time=50.0)
        pool.acquire(0.0)
        pool.acquire(1.0)  # forces heap mode
        pool.acquire(2.0)
        pool.reset()
        assert pool.acquire(0.0) == 50.0
        assert pool.acquire(0.0) == 50.0
        assert pool.acquire(0.0) == 100.0

    def test_n_servers_reported(self):
        assert ResourcePool(5, 1.0).n_servers == 5

    @given(
        st.integers(min_value=1, max_value=6),
        st.sampled_from([0.0, 0.5, 1.0, 2.5, 10.0]),
        st.lists(
            st.sampled_from([0.0, 0.5, 1.0, 2.0, 7.5]),
            min_size=1,
            max_size=80,
        ),
    )
    def test_property_matches_heap_oracle(self, n, service, deltas):
        """Differential: the two-group pool vs a plain min-heap of
        per-server free times, on monotonic arrivals with frequent
        exact ties (the collapse/degrade triggers)."""
        import heapq

        pool = ResourcePool(n, service_time=service)
        oracle = [0.0] * n
        now = 0.0
        for delta in deltas:
            now += delta
            earliest = heapq.heappop(oracle)
            done = (now if now > earliest else earliest) + service
            heapq.heappush(oracle, done)
            assert pool.acquire(now) == done
