"""Unit tests for serializing resources (ports, walker pools)."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.resources import ResourcePool, SerialResource


class TestSerialResource:
    def test_idle_resource_grants_immediately(self):
        port = SerialResource(occupancy=2.0)
        assert port.acquire(10.0) == 10.0

    def test_back_to_back_requests_serialize(self):
        port = SerialResource(occupancy=2.0)
        assert port.acquire(0.0) == 0.0
        assert port.acquire(0.0) == 2.0
        assert port.acquire(0.0) == 4.0

    def test_gap_larger_than_occupancy_leaves_no_queue(self):
        port = SerialResource(occupancy=2.0)
        port.acquire(0.0)
        assert port.acquire(100.0) == 100.0

    def test_negative_occupancy_rejected(self):
        with pytest.raises(ValueError):
            SerialResource(-1.0)

    def test_reset_clears_backlog(self):
        port = SerialResource(occupancy=10.0)
        port.acquire(0.0)
        port.reset()
        assert port.acquire(0.0) == 0.0

    @given(
        st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=100),
        st.floats(min_value=0.5, max_value=10),
    )
    def test_property_grants_are_monotonic_and_spaced(self, arrivals, occ):
        port = SerialResource(occupancy=occ)
        grants = [port.acquire(t) for t in sorted(arrivals)]
        for a, b in zip(grants, grants[1:]):
            assert b >= a + occ - 1e-9
        for arrival, grant in zip(sorted(arrivals), grants):
            assert grant >= arrival


class TestResourcePool:
    def test_parallel_servers_do_not_queue(self):
        pool = ResourcePool(4, service_time=100.0)
        done = [pool.acquire(0.0) for _ in range(4)]
        assert done == [100.0] * 4

    def test_excess_requests_queue_on_earliest_server(self):
        pool = ResourcePool(2, service_time=100.0)
        assert pool.acquire(0.0) == 100.0
        assert pool.acquire(0.0) == 100.0
        assert pool.acquire(0.0) == 200.0  # waits for a server

    def test_staggered_arrivals(self):
        pool = ResourcePool(1, service_time=10.0)
        assert pool.acquire(0.0) == 10.0
        assert pool.acquire(5.0) == 20.0
        assert pool.acquire(50.0) == 60.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ResourcePool(0, 1.0)
        with pytest.raises(ValueError):
            ResourcePool(1, -1.0)

    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=60),
    )
    def test_property_throughput_bounded_by_servers(self, n, arrivals):
        """No time window of length service_time completes more than n."""
        service = 10.0
        pool = ResourcePool(n, service_time=service)
        completions = sorted(pool.acquire(t) for t in sorted(arrivals))
        for i, start in enumerate(completions):
            in_window = sum(
                1 for c in completions if start <= c < start + service - 1e-9
            )
            assert in_window <= n
