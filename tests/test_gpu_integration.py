"""Integration tests: full GPU runs across configurations."""

import pytest

from repro import BASELINE_CONFIG, L1TLBMode, TBSchedulerKind, build_gpu, run_kernel
from repro.engine.simulator import Simulator

from conftest import build_kernel


class TestBasicExecution:
    def test_all_tbs_complete(self, tiny_kernel):
        result = run_kernel(BASELINE_CONFIG, tiny_kernel)
        assert result.tbs_completed == tiny_kernel.num_tbs
        assert result.cycles > 0

    def test_deterministic(self, tiny_kernel):
        r1 = run_kernel(BASELINE_CONFIG, tiny_kernel)
        r2 = run_kernel(BASELINE_CONFIG, tiny_kernel)
        assert r1.cycles == r2.cycles
        assert r1.l1_tlb_hits == r2.l1_tlb_hits

    def test_accesses_accounted(self, tiny_kernel):
        result = run_kernel(BASELINE_CONFIG, tiny_kernel)
        assert result.l1_tlb_accesses == tiny_kernel.total_transactions()

    def test_reuse_produces_hits(self):
        kernel = build_kernel(num_tbs=2, warps_per_tb=1, instrs_per_warp=50,
                              pages_per_warp=2)
        result = run_kernel(BASELINE_CONFIG, kernel)
        assert result.avg_l1_tlb_hit_rate > 0.8

    def test_no_reuse_produces_misses(self):
        kernel = build_kernel(num_tbs=2, warps_per_tb=1, instrs_per_warp=50)
        result = run_kernel(BASELINE_CONFIG, kernel)
        assert result.overall_l1_tlb_hit_rate == 0.0
        assert result.walks == 100

    def test_more_tbs_than_slots(self):
        # 16 SMs x occupancy: dispatch must refill as TBs finish.
        kernel = build_kernel(num_tbs=600, warps_per_tb=1, instrs_per_warp=3)
        result = run_kernel(BASELINE_CONFIG, kernel)
        assert result.tbs_completed == 600

    def test_run_result_stats_dump(self, tiny_kernel):
        result = run_kernel(BASELINE_CONFIG, tiny_kernel)
        assert "l2_tlb" in result.stats
        assert "walkers" in result.stats

    def test_cannot_launch_twice(self, tiny_kernel):
        gpu = build_gpu(BASELINE_CONFIG)
        gpu.launch(tiny_kernel)
        with pytest.raises(RuntimeError):
            gpu.launch(tiny_kernel)


class TestConfigurations:
    @pytest.mark.parametrize("mode", list(L1TLBMode))
    def test_all_tlb_modes_run(self, mode, tiny_kernel):
        cfg = BASELINE_CONFIG.replace(l1_tlb_mode=mode)
        result = run_kernel(cfg, tiny_kernel)
        assert result.tbs_completed == tiny_kernel.num_tbs

    @pytest.mark.parametrize("kind", list(TBSchedulerKind))
    def test_all_schedulers_run(self, kind, tiny_kernel):
        cfg = BASELINE_CONFIG.replace(tb_scheduler=kind)
        result = run_kernel(cfg, tiny_kernel)
        assert result.tbs_completed == tiny_kernel.num_tbs

    def test_compression_config_runs(self, tiny_kernel):
        cfg = BASELINE_CONFIG.replace(l1_tlb_compression=True)
        result = run_kernel(cfg, tiny_kernel)
        assert result.tbs_completed == tiny_kernel.num_tbs

    def test_huge_pages_reduce_walks(self):
        kernel = build_kernel(num_tbs=4, warps_per_tb=2, instrs_per_warp=40)
        small = run_kernel(BASELINE_CONFIG, kernel)
        huge = run_kernel(BASELINE_CONFIG.replace(page_size=2 * 1024 * 1024),
                          kernel)
        assert huge.walks < small.walks
        assert huge.avg_l1_tlb_hit_rate > small.avg_l1_tlb_hit_rate

    def test_bigger_l1_tlb_never_hurts_hits(self):
        kernel = build_kernel(num_tbs=8, warps_per_tb=2, instrs_per_warp=60,
                              pages_per_warp=12)
        small = run_kernel(BASELINE_CONFIG, kernel)
        big = run_kernel(BASELINE_CONFIG.replace(l1_tlb_entries=1024), kernel)
        assert big.l1_tlb_hits >= small.l1_tlb_hits

    def test_occupancy_override_serializes_tbs(self, tiny_kernel):
        result = run_kernel(BASELINE_CONFIG, tiny_kernel, occupancy_override=1)
        assert result.tbs_completed == tiny_kernel.num_tbs

    def test_tlb_trace_recording(self, tiny_kernel):
        result = run_kernel(BASELINE_CONFIG, tiny_kernel, record_tlb_trace=True)
        assert result.tlb_traces is not None
        total = sum(len(t) for t in result.tlb_traces)
        assert total == tiny_kernel.total_transactions()
        for stream in result.tlb_traces:
            for tb_index, vpn in stream:
                assert 0 <= tb_index < tiny_kernel.num_tbs


class TestIsolationSemantics:
    def test_partitioned_tlb_isolates_identical_tbs(self):
        """Two TBs hammering the same pages: baseline shares entries,
        partitioning duplicates them (the paper's redundant entries)."""
        from repro.arch.kernel import Kernel, MemoryInstruction, TBTrace, WarpTrace

        def shared_kernel():
            tbs = []
            for t in range(2):
                instrs = [MemoryInstruction(4.0, ((i % 4) * 4096,))
                          for i in range(40)]
                tbs.append(TBTrace(t, [WarpTrace(instrs)]))
            return Kernel("shared", threads_per_tb=32, tbs=tbs)

        base = run_kernel(BASELINE_CONFIG, shared_kernel())
        part = run_kernel(
            BASELINE_CONFIG.replace(l1_tlb_mode=L1TLBMode.PARTITIONED),
            shared_kernel(),
        )
        # Both TBs land on the same SM slot only if scheduled there; with
        # 16 SMs they go to different SMs, so totals still make sense.
        assert base.tbs_completed == part.tbs_completed == 2

    def test_shared_simulator_reuse_rejected(self, tiny_kernel):
        sim = Simulator()
        gpu = build_gpu(BASELINE_CONFIG, sim=sim)
        gpu.run(tiny_kernel)
        # A second kernel on the same GPU instance is allowed once the
        # first completed.
        gpu.run(build_kernel(num_tbs=2))
