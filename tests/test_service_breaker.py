"""Unit tests for the per-workload circuit-breaker state machine."""

import pytest

from repro.service import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
)


def make_breaker(window=4, threshold=2, cooldown=2):
    return CircuitBreaker(
        "bfs",
        BreakerPolicy(
            window=window, failure_threshold=threshold, cooldown=cooldown
        ),
    )


def test_starts_closed_and_allows():
    breaker = make_breaker()
    assert breaker.state == CLOSED
    assert breaker.allow() == (True, "")


def test_trips_open_at_threshold():
    breaker = make_breaker(threshold=2)
    breaker.record_failure("worker_crash")
    assert breaker.state == CLOSED
    breaker.record_failure("worker_crash")
    assert breaker.state == OPEN
    assert breaker.trips == 1


def test_successes_keep_failures_below_threshold():
    breaker = make_breaker(window=4, threshold=3)
    for _ in range(10):
        breaker.record_failure("timeout")
        breaker.record_success()
        breaker.record_success()
    # never 3 failures inside any 4-outcome window
    assert breaker.state == CLOSED


def test_open_denies_through_cooldown_then_probes():
    breaker = make_breaker(threshold=1, cooldown=2)
    breaker.record_failure("livelock")
    assert breaker.state == OPEN
    allowed, reason = breaker.allow()
    assert not allowed and "breaker open" in reason
    allowed, _ = breaker.allow()
    assert not allowed
    # cooldown served: the next decision admits a half-open probe
    assert breaker.allow() == (True, "probe")
    assert breaker.state == HALF_OPEN


def test_probe_success_closes_and_resets():
    breaker = make_breaker(threshold=1, cooldown=0)
    breaker.record_failure("timeout")
    assert breaker.allow() == (True, "probe")
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.failures_in_window() == 0
    assert breaker.allow() == (True, "")


def test_probe_failure_reopens_and_restarts_cooldown():
    breaker = make_breaker(threshold=1, cooldown=1)
    breaker.record_failure("timeout")
    allowed, _ = breaker.allow()  # serving the 1-job cooldown
    assert not allowed
    assert breaker.allow() == (True, "probe")
    breaker.record_failure("timeout")
    assert breaker.state == OPEN
    allowed, _ = breaker.allow()  # cooldown restarted: denied again
    assert not allowed
    assert breaker.allow() == (True, "probe")


def test_dominant_class_majority_and_tiebreak():
    breaker = make_breaker(window=8, threshold=8)
    breaker.record_failure("timeout")
    breaker.record_failure("worker_crash")
    breaker.record_failure("worker_crash")
    assert breaker.dominant_class() == "worker_crash"
    breaker.record_failure("timeout")
    # tied 2/2: alphabetically first wins, deterministically
    assert breaker.dominant_class() == "timeout"


def test_dominant_class_defaults_to_simulation():
    assert make_breaker().dominant_class() == "simulation"


def test_window_eviction_shrinks_class_histogram():
    breaker = make_breaker(window=2, threshold=2)

    # threshold never reached: each failure is followed by successes
    # that push it out of the 2-outcome window
    breaker.record_failure("timeout")
    breaker.record_success()
    breaker.record_success()
    assert breaker.failures_in_window() == 0
    assert breaker.dominant_class() == "simulation"
    assert breaker.state == CLOSED


def test_describe_mentions_state_and_cause():
    breaker = make_breaker(threshold=1)
    breaker.record_failure("worker_crash")
    text = breaker.describe()
    assert "bfs" in text and "OPEN" in text and "worker_crash" in text


def test_payload_round_trip():
    breaker = make_breaker(window=4, threshold=2, cooldown=3)
    breaker.record_failure("timeout")
    breaker.record_failure("timeout")
    breaker.allow()  # one denial into the cooldown
    clone = CircuitBreaker.from_payload(breaker.to_payload(), breaker.policy)
    assert clone.state == breaker.state == OPEN
    assert clone.failures_in_window() == breaker.failures_in_window()
    assert clone.dominant_class() == breaker.dominant_class()
    assert clone.trips == breaker.trips
    # the clone continues the cooldown exactly where the original was
    assert clone.allow() == breaker.allow()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"window": 0},
        {"failure_threshold": 0},
        {"window": 2, "failure_threshold": 3},
        {"cooldown": -1},
    ],
)
def test_policy_validation(kwargs):
    with pytest.raises(ValueError):
        BreakerPolicy(**kwargs)
