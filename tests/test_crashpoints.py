"""Tests for the systematic crash-point explorer."""

import os

from repro.service.crashpoints import (
    SCRIPT_JOBS,
    _audit,
    canned_result,
    explore,
)


def test_full_exploration_holds_every_invariant(tmp_path):
    report = explore(base_dir=str(tmp_path))
    assert report.ok(), [o.problems for o in report.failures]
    # the scripted session is substantial: every journal append is two
    # mutating ops, plus cache writes and the snapshot compaction
    assert report.mutating_ops >= 20
    assert len(report.outcomes) == report.mutating_ops
    assert all(o.crashed for o in report.outcomes)


def test_torn_mode_holds_every_invariant(tmp_path):
    report = explore(base_dir=str(tmp_path), torn=True)
    assert report.ok(), [o.problems for o in report.failures]
    assert len(report.outcomes) == report.mutating_ops


def test_budget_bounds_and_brackets_exploration(tmp_path):
    report = explore(base_dir=str(tmp_path), budget=5)
    assert report.ok()
    indexes = [o.index for o in report.outcomes]
    assert len(indexes) == 5
    assert indexes[0] == 0
    assert indexes[-1] == report.mutating_ops - 1
    assert indexes == sorted(indexes)


def test_audit_catches_a_lost_done_record(tmp_path):
    """The audit has teeth: surgically removing the DONE records from
    a survivor journal is reported as a lost acked completion."""
    from repro.service import JOURNAL_NAME, Journal
    from repro.service.crashpoints import AckFact

    report = explore(base_dir=str(tmp_path))
    assert report.ok()
    # find a pre-compaction crash point whose log carries DONE records
    directory = None
    chosen = None
    for outcome in reversed(report.outcomes):
        candidate = os.path.join(
            str(tmp_path), f"point-{outcome.index:04d}"
        )
        journal = Journal(
            os.path.join(candidate, JOURNAL_NAME), scale="micro", seed=7
        )
        records = journal.replay()
        journal.close()
        types = [r["type"] for r in records]
        if "done" in types and "snapshot" not in types:
            directory, chosen = candidate, outcome.index
            break
    assert directory is not None, "no survivor log with DONE records"

    # rebuild the journal without its DONE records.  Re-sequencing
    # moves every lease record, and replay insists a lease's fencing
    # token equals its own seq — so fences are re-minted per job to
    # keep the log formally valid; only the semantics lie.
    path = os.path.join(directory, JOURNAL_NAME)
    journal = Journal(path, scale="micro", seed=7)
    kept = [
        (r["type"], r["payload"])
        for r in journal.replay()
        if r["type"] != "done"
    ]
    journal.close()
    os.remove(path)
    rebuilt = Journal(path, scale="micro", seed=7)
    fences = {}
    for rtype, payload in kept:
        payload = dict(payload)
        job_id = payload.get("job_id")
        if rtype == "lease":
            payload["fence"] = rebuilt.mint_fence()
            fences[job_id] = payload["fence"]
        elif "fence" in payload and job_id in fences:
            payload["fence"] = fences[job_id]
        seq = rebuilt.append(rtype, payload)
        if rtype == "reclaim":
            fences[job_id] = seq
    rebuilt.close()

    benchmark, config = SCRIPT_JOBS[0]
    facts = [
        AckFact(
            rtype="done",
            job_id=f"{benchmark}:{config}",
            mutating_ops=0,  # claim durability from the first boundary
            result=canned_result(benchmark, config),
        )
    ]
    problems = _audit(directory, chosen, facts, {}, "micro", 7)
    assert any("acked DONE" in p for p in problems), problems


def test_report_summary_lines(tmp_path):
    report = explore(base_dir=str(tmp_path), budget=2)
    lines = report.summary_lines()
    assert any("crash points" in line for line in lines)
    assert any("all invariants held" in line for line in lines)


def test_cli_crash_explore_smoke(tmp_path, capsys):
    from repro.cli import main

    code = main(
        ["crash-explore", "--budget", "3", "--dir", str(tmp_path / "x")]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "all invariants held" in out
