"""Tests for the translation-aware warp scheduler extension."""

from repro import BASELINE_CONFIG, WarpSchedulerKind, build_gpu
from repro.arch.kernel import MemoryInstruction, WarpTrace
from repro.arch.warp import WarpRuntime
from repro.arch.warp_scheduler import GTOIssuePort, TranslationAwareIssuePort
from repro.engine.simulator import Simulator

from conftest import build_kernel


def make_warp(age):
    trace = WarpTrace([MemoryInstruction(0.0, (0,))])

    class TB:
        hw_tb_id = 0

    return WarpRuntime(trace, warp_id=age, tb=TB(), age=age)


def test_gto_note_outcome_is_noop():
    port = GTOIssuePort(Simulator())
    port.note_outcome(make_warp(0), hit=False)  # must not raise


def test_translation_aware_prefers_hitting_warps():
    sim = Simulator()
    port = TranslationAwareIssuePort(sim, issue_interval=1.0)
    w_miss, w_hit = make_warp(0), make_warp(5)
    port.note_outcome(w_miss, hit=False)
    port.note_outcome(w_hit, hit=True)
    order = []
    port.request(w_miss, lambda t: order.append("miss"))
    port.request(w_hit, lambda t: order.append("hit"))
    sim.run()
    # Despite being younger by age, the hitting warp goes first.
    assert order == ["hit", "miss"]


def test_translation_aware_falls_back_when_all_missing():
    sim = Simulator()
    port = TranslationAwareIssuePort(sim, issue_interval=1.0)
    w0, w1 = make_warp(3), make_warp(1)
    port.note_outcome(w0, hit=False)
    port.note_outcome(w1, hit=False)
    order = []
    port.request(w0, lambda t: order.append(3))
    port.request(w1, lambda t: order.append(1))
    sim.run()
    assert order == [1, 3]  # oldest first among all-missing


def test_greedy_still_wins():
    sim = Simulator()
    port = TranslationAwareIssuePort(sim, issue_interval=1.0)
    w0 = make_warp(0)
    order = []

    def regrant(_t):
        order.append("w0")
        if len(order) == 1:
            port.note_outcome(w0, hit=False)
            port.request(w0, lambda t: order.append("w0-again"))
            w_new = make_warp(9)
            port.note_outcome(w_new, hit=True)
            port.request(w_new, lambda t: order.append("w9"))

    port.request(w0, regrant)
    sim.run()
    # Greedy: w0 re-issues before the hitting warp despite its miss.
    assert order == ["w0", "w0-again", "w9"]


def test_full_run_with_translation_aware_scheduler():
    kernel = build_kernel(num_tbs=8, warps_per_tb=2, instrs_per_warp=20,
                          pages_per_warp=3)
    cfg = BASELINE_CONFIG.replace(
        warp_scheduler=WarpSchedulerKind.TRANSLATION_AWARE
    )
    result = build_gpu(cfg).run(kernel)
    assert result.tbs_completed == 8
    assert result.l1_tlb_accesses == kernel.total_transactions()
