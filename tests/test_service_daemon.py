"""Daemon end-to-end tests: socket API, deadlines, cancel, preemption,
idempotent retries, malformed frames, stale clients, chaos recovery.

The in-process tests run a real :class:`SweepDaemon` on a thread and
talk to it through real Unix sockets; the chaos test SIGKILLs a real
``repro serve --daemon`` subprocess and proves a retried request is
answered byte-identically with no duplicate execution.
"""

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro.engine.errors import (
    AdmissionError,
    CancelledJobError,
    DeadlineError,
)
from repro.engine.faults import FaultKind, FaultPlan
from repro.engine.supervision import RetryPolicy
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    AdmissionPolicy,
    DaemonClient,
    Journal,
    SweepDaemon,
    SweepService,
)
from repro.service.pool import PreemptRequest
from repro.service.protocol import MAX_FRAME_BYTES

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_pool(tmp_path, **kwargs):
    kwargs.setdefault("scale", "micro")
    kwargs.setdefault("seed", 0)
    pool = SweepService(str(tmp_path / "svc"), **kwargs)
    pool.recover()
    return pool


class DaemonHarness:
    """A live daemon on a background thread, torn down on exit."""

    def __init__(self, pool, **kwargs):
        kwargs.setdefault("idle_poll", 0.02)
        self.daemon = SweepDaemon(pool, **kwargs)
        self.pool = pool
        self.thread = threading.Thread(
            target=self.daemon.serve_forever, daemon=True
        )

    def __enter__(self):
        self.thread.start()
        client = DaemonClient(self.pool.directory, timeout=5.0)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                client.ping()
                break
            except Exception:
                time.sleep(0.02)
        else:
            raise RuntimeError("daemon never came up")
        self.client = client
        return self

    def __exit__(self, *exc_info):
        try:
            self.client.shutdown()
        except Exception:
            pass
        self.client.close()
        self.thread.join(timeout=10.0)
        assert not self.thread.is_alive(), "daemon failed to drain"


# --------------------------------------------------------------------- #
# Happy path + idempotent retries
# --------------------------------------------------------------------- #


def test_submit_wait_roundtrip_and_cached_retry(tmp_path):
    pool = make_pool(tmp_path)
    with DaemonHarness(pool) as h:
        first = h.client.submit("nw", "baseline")
        assert first["cached"] is False
        done = h.client.wait(job_id=first["job_id"])
        assert done["state"] == DONE
        cycles = done["result"]["cycles"]
        # a timed-out-and-retried request carries the same content key:
        # it must be served from the cache, not simulated again
        retried = h.client.submit("nw", "baseline", key=first["key"])
        assert retried["cached"] is True
        assert retried["result"] == done["result"]
        # and the cache really holds one immutable byte string
        blob = pool.results.get_bytes(first["key"])
        assert blob == pool.results.get_bytes(first["key"])
        assert json.loads(blob)["result"]["cycles"] == cycles
    assert pool.state.counters["done"] == 1


def test_fresh_client_joins_in_flight_job_by_key(tmp_path):
    pool = make_pool(tmp_path)
    with DaemonHarness(pool) as h:
        first = h.client.submit("nw", "baseline")
        second = DaemonClient(pool.directory, timeout=5.0)
        try:
            joined = second.submit("nw", "baseline", key=first["key"])
            assert joined["job_id"] == first["job_id"]
            done = second.wait(key=first["key"])
            assert done["state"] == DONE
        finally:
            second.close()
    assert pool.state.counters["queued"] == 1


def test_status_and_stats_ops(tmp_path):
    pool = make_pool(tmp_path)
    with DaemonHarness(pool) as h:
        submitted = h.client.submit("nw", "baseline")
        h.client.wait(job_id=submitted["job_id"])
        status = h.client.status(submitted["job_id"])
        assert status["job"]["state"] == DONE
        stats = h.client.stats()
        assert stats["counters"]["done"] == 1
        assert stats["cache"]["entries"] == 1
        assert stats["requests_served"] > 0


# --------------------------------------------------------------------- #
# Malformed and oversized frames: rejected, daemon survives
# --------------------------------------------------------------------- #


def raw_connect(daemon):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(5.0)
    sock.connect(daemon.socket_path)
    return sock


def read_frame(sock):
    prefix = sock.recv(4)
    (length,) = struct.unpack(">I", prefix)
    blob = b""
    while len(blob) < length:
        chunk = sock.recv(length - len(blob))
        if not chunk:
            break
        blob += chunk
    return json.loads(blob)


def test_oversized_frame_rejected_connection_closed_daemon_up(tmp_path):
    pool = make_pool(tmp_path)
    with DaemonHarness(pool) as h:
        sock = raw_connect(h.daemon)
        try:
            sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            response = read_frame(sock)
            assert response["ok"] is False
            assert response["error"] == "protocol"
            # framing violation desynchronizes the stream: closed
            assert sock.recv(1) == b""
        finally:
            sock.close()
        # the daemon itself is unharmed and still serves
        assert h.client.ping()["ok"] is True
        assert h.client.stats()["rejected_frames"] == 1


def test_zero_length_frame_rejected(tmp_path):
    pool = make_pool(tmp_path)
    with DaemonHarness(pool) as h:
        sock = raw_connect(h.daemon)
        try:
            sock.sendall(struct.pack(">I", 0) + b"junk that follows")
            response = read_frame(sock)
            assert response["ok"] is False and response["error"] == "protocol"
        finally:
            sock.close()
        assert h.client.ping()["ok"] is True


def test_well_framed_garbage_keeps_connection_open(tmp_path):
    pool = make_pool(tmp_path)
    with DaemonHarness(pool) as h:
        sock = raw_connect(h.daemon)
        try:
            body = b"\xffnot json\xfe"
            sock.sendall(struct.pack(">I", len(body)) + body)
            response = read_frame(sock)
            assert response["ok"] is False and response["error"] == "protocol"
            # the stream is still synchronized: a valid request on the
            # SAME connection must succeed
            ping = json.dumps({"op": "ping"}).encode()
            sock.sendall(struct.pack(">I", len(ping)) + ping)
            assert read_frame(sock)["ok"] is True
        finally:
            sock.close()


def test_unknown_op_and_missing_fields_rejected(tmp_path):
    pool = make_pool(tmp_path)
    with DaemonHarness(pool) as h:
        bad_op = h.daemon.handle_request({"op": "rm -rf"})
        assert bad_op["ok"] is False and bad_op["error"] == "protocol"
        bad_submit = h.daemon.handle_request({"op": "submit"})
        assert bad_submit["ok"] is False and bad_submit["error"] == "protocol"
        bad_deadline = h.daemon.handle_request(
            {"op": "submit", "benchmark": "nw", "config": "baseline",
             "deadline": "tomorrow"}
        )
        assert bad_deadline["ok"] is False


def test_malformed_idempotency_key_rejected_daemon_up(tmp_path):
    # regression: a key with a path separator used to reach
    # ResultCache.path_for, whose ValueError unwound the event loop and
    # killed the daemon for every client
    pool = make_pool(tmp_path)
    with DaemonHarness(pool) as h:
        for bad in ("a/b", "../../etc/passwd", "", "Z" * 64, "abc"):
            for op in ("submit", "wait"):
                response = h.daemon.handle_request(
                    {"op": op, "benchmark": "nw", "config": "baseline",
                     "key": bad}
                )
                assert response["ok"] is False
                assert response["error"] == "protocol"
        # ... and over the wire: the daemon answers and stays up
        body = json.dumps(
            {"op": "submit", "benchmark": "nw", "config": "baseline",
             "key": "a/b"}
        ).encode()
        sock = raw_connect(h.daemon)
        try:
            sock.sendall(struct.pack(">I", len(body)) + body)
            response = read_frame(sock)
            assert response["ok"] is False
            assert response["error"] == "protocol"
        finally:
            sock.close()
        assert h.client.ping()["ok"] is True


def test_non_string_job_id_rejected_not_raised(tmp_path):
    # regression: a list/object job_id raised TypeError (unhashable)
    # out of the jobs dict lookup and crashed the daemon
    pool = make_pool(tmp_path)
    with DaemonHarness(pool) as h:
        for request in (
            {"op": "status", "job_id": []},
            {"op": "status", "job_id": {}},
            {"op": "wait", "job_id": []},
            {"op": "cancel", "job_id": 7},
        ):
            response = h.daemon.handle_request(request)
            assert response["ok"] is False
            assert response["error"] == "protocol"
        body = json.dumps({"op": "status", "job_id": []}).encode()
        sock = raw_connect(h.daemon)
        try:
            sock.sendall(struct.pack(">I", len(body)) + body)
            assert read_frame(sock)["ok"] is False
        finally:
            sock.close()
        assert h.client.ping()["ok"] is True


def test_unexpected_handler_error_is_contained(tmp_path):
    # belt-and-braces: even a bug in a handler must surface as an error
    # response on one connection, never unwind serve_forever
    pool = make_pool(tmp_path)
    daemon = SweepDaemon(pool)

    def boom(job_id):
        raise RuntimeError("handler bug")

    pool.cancel = boom
    response = daemon.handle_request({"op": "cancel", "job_id": "nw:x"})
    assert response["ok"] is False
    assert response["error"] == "protocol"
    assert "RuntimeError" in response["message"]
    pool.close()


def test_slow_reader_backpressured_not_dropped(tmp_path):
    # regression: sendall() on the non-blocking socket raised
    # BlockingIOError once the kernel buffer filled, and the slow (not
    # dead) reader was dropped mid-frame instead of back-pressured
    import selectors

    from repro.service.protocol import encode_frame
    from repro.service.server import _Client

    pool = make_pool(tmp_path)
    daemon = SweepDaemon(pool)
    daemon.selector = selectors.DefaultSelector()
    server_side, client_side = socket.socketpair()
    try:
        server_side.setblocking(False)
        server_side.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
        client = _Client(server_side, 0.0)
        daemon.clients[server_side.fileno()] = client
        daemon.selector.register(server_side, selectors.EVENT_READ)
        body = {"ok": True, "blob": "x" * 400_000}
        expected = encode_frame(body)
        daemon._send(client, body)
        # the kernel buffer filled: the remainder queues on the client,
        # which stays connected and selector-watched for writability
        assert client.out
        assert server_side.fileno() >= 0
        assert (
            daemon.selector.get_key(server_side).events
            & selectors.EVENT_WRITE
        )
        client_side.settimeout(5.0)
        received = b""
        while len(received) < len(expected):
            received += client_side.recv(65536)
            if client.out:
                daemon._flush(client)
        assert received == expected
        assert client.out == b""
        # fully drained: write interest is withdrawn again
        assert not (
            daemon.selector.get_key(server_side).events
            & selectors.EVENT_WRITE
        )
    finally:
        client_side.close()
        daemon._close_all()
        pool.close()


def test_shed_retry_sleeps_hint_instead_of_backoff(tmp_path):
    # regression: the client slept the server's retry_after hint AND
    # the next attempt's backoff, roughly doubling the standoff
    from repro.service.protocol import encode_frame, recv_frame

    server_side, client_side = socket.socketpair()
    responses = [
        {"ok": False, "error": "admission", "message": "shed",
         "retry_after": 7.5},
        {"ok": True},
    ]

    def responder():
        for response in responses:
            try:
                recv_frame(server_side, timeout=5.0)
            except Exception:
                return
            server_side.sendall(encode_frame(response))

    thread = threading.Thread(target=responder, daemon=True)
    thread.start()
    slept = []
    client = DaemonClient(str(tmp_path), sleep=slept.append)
    client._sock = client_side
    try:
        assert client.request({"op": "ping"})["ok"] is True
        # exactly one standoff for the shed retry — the hint, not
        # hint + backoff stacked
        assert slept == [7.5]
    finally:
        client.close()
        server_side.close()
        thread.join(timeout=5.0)


def test_client_disconnect_mid_stream_does_not_kill_daemon(tmp_path):
    pool = make_pool(tmp_path)
    with DaemonHarness(pool) as h:
        sock = raw_connect(h.daemon)
        # half a frame, then vanish — the daemon must shrug it off
        sock.sendall(struct.pack(">I", 500) + b'{"op": "subm')
        sock.close()
        time.sleep(0.1)
        assert h.client.ping()["ok"] is True


def test_stale_clients_evicted_on_ttl(tmp_path):
    pool = make_pool(tmp_path)
    with DaemonHarness(pool, client_ttl=0.2) as h:
        sock = raw_connect(h.daemon)
        try:
            deadline = time.monotonic() + 5.0
            evicted = False
            while time.monotonic() < deadline:
                if h.client.stats()["evicted"] >= 1:
                    evicted = True
                    break
                time.sleep(0.05)
            assert evicted, "idle client never evicted"
            assert sock.recv(1) == b""  # server closed our end
        finally:
            sock.close()


# --------------------------------------------------------------------- #
# Load shedding carries retry-after; the client honors it
# --------------------------------------------------------------------- #


def test_shed_response_carries_retry_after_hint(tmp_path):
    pool = make_pool(
        tmp_path,
        admission=AdmissionPolicy(max_depth=2, high_watermark=1,
                                  low_watermark=1),
    )
    daemon = SweepDaemon(pool)
    pool.submit("nw", "baseline")
    shed = daemon.handle_request(
        {"op": "submit", "benchmark": "nw", "config": "sched"}
    )
    assert shed["ok"] is False
    assert shed["error"] == "admission"
    assert shed["retry_after"] > 0
    assert pool.state.counters["shed"] == 1
    pool.close()


def test_client_sleeps_retry_after_then_raises_admission(tmp_path):
    # the queued cell hangs (injected fault) so the daemon stays busy
    # and pending depth holds at the watermark while the client submits
    plan = FaultPlan().add("nw", "baseline", FaultKind.TIMEOUT)
    pool = make_pool(
        tmp_path,
        fault_plan=plan,
        timeout=6.0,  # long enough that both client attempts land
        retry=RetryPolicy(max_attempts=1),  # inside the hung cell
        admission=AdmissionPolicy(max_depth=2, high_watermark=1,
                                  low_watermark=1),
    )
    pool.submit("nw", "baseline")  # fills the queue to the watermark
    slept = []
    with DaemonHarness(pool) as h:
        # two attempts: both land inside the hung cell's 3s lifetime,
        # so the second shed is terminal and raises
        client = DaemonClient(
            pool.directory, timeout=5.0, max_attempts=2,
            sleep=slept.append,
        )
        try:
            with pytest.raises(AdmissionError) as excinfo:
                client.submit("nw", "sched")
            assert excinfo.value.retry_after > 0
            # every shed response's hint was slept before retrying
            hint = excinfo.value.retry_after
            assert slept.count(hint) >= 1
        finally:
            client.close()


# --------------------------------------------------------------------- #
# Deadlines: client -> queue -> worker lease, never silently kept
# --------------------------------------------------------------------- #


def test_pending_job_past_deadline_fails_without_running(tmp_path):
    now = [1000.0]
    pool = make_pool(tmp_path, wall_clock=lambda: now[0])
    pool.submit("nw", "baseline", deadline=5.0)
    now[0] += 10.0  # the deadline passes while the job is still queued
    pool.run()
    pool.close()
    job = pool.state.jobs["nw:baseline"]
    assert job.state == FAILED
    assert job.error_class == "deadline"
    assert pool.state.counters["done"] == 0
    # a deadline blow says nothing about the workload: no breaker food
    assert not pool.breakers or pool.breaker_for("nw").allow()[0]


def test_deadline_propagates_to_worker_lease_and_preempts_midrun(tmp_path):
    plan = FaultPlan().add("nw", "baseline", FaultKind.TIMEOUT)
    pool = make_pool(
        tmp_path,
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=3),
    )
    pool.submit("nw", "baseline", deadline=1.2)
    job = pool.state.jobs["nw:baseline"]
    assert job.deadline_unix > 0
    pool.run()
    pool.close()
    job = pool.state.jobs["nw:baseline"]
    assert job.state == FAILED
    assert job.error_class == "deadline"
    assert "deadline" in job.message


def test_daemon_deadline_surfaces_as_exit_class_to_client(tmp_path):
    plan = FaultPlan().add("nw", "baseline", FaultKind.TIMEOUT)
    pool = make_pool(tmp_path, fault_plan=plan)
    with DaemonHarness(pool) as h:
        submitted = h.client.submit("nw", "baseline", deadline=1.2)
        with pytest.raises(DeadlineError):
            h.client.wait(job_id=submitted["job_id"])


# --------------------------------------------------------------------- #
# Cancel: pending cancels immediately, running is preempted
# --------------------------------------------------------------------- #


def test_cancel_pending_job(tmp_path):
    pool = make_pool(tmp_path)
    pool.submit("nw", "baseline")
    job = pool.cancel("nw:baseline")
    assert job.state == CANCELLED
    assert pool.state.counters["cancelled"] == 1
    # cancelled jobs never run
    pool.run()
    assert pool.state.counters["done"] == 0
    pool.close()


def test_cancel_terminal_job_is_a_noop(tmp_path):
    pool = make_pool(tmp_path)
    pool.submit("nw", "baseline")
    pool.run()
    job = pool.cancel("nw:baseline")
    assert job.state == DONE  # the cancel lost the race, honestly
    pool.close()


def test_cancel_running_job_preempts_worker(tmp_path):
    plan = FaultPlan().add("nw", "baseline", FaultKind.TIMEOUT)
    pool = make_pool(tmp_path, fault_plan=plan)
    pool.submit("nw", "baseline")
    # flag the cancel before the pool leases it: the first heartbeat
    # (~1s into the hung worker) must preempt and journal the cancel
    pool._cancel_requested.add("nw:baseline")
    started = time.monotonic()
    pool.run()
    elapsed = time.monotonic() - started
    pool.close()
    job = pool.state.jobs["nw:baseline"]
    assert job.state == CANCELLED
    assert pool.state.counters["reclaimed"] == 1
    assert pool.state.counters["cancelled"] == 1
    # the preempt kills the worker immediately — no 5s join stall
    assert elapsed < 4.0


def test_heartbeat_yield_decisions_are_deterministic(tmp_path):
    now = [1000.0]
    pool = make_pool(tmp_path, wall_clock=lambda: now[0])
    pool.submit("nw", "baseline", deadline=50.0)
    job = pool.state.jobs["nw:baseline"]
    # no cancel, no deadline, no rival: the heartbeat just renews
    pool.leases.grant(job.job_id, "test")
    pool._heartbeat(job, started_wall=1000.0)
    # a pending cancel wins over everything
    pool._cancel_requested.add(job.job_id)
    with pytest.raises(PreemptRequest, match="cancel"):
        pool._heartbeat(job, started_wall=1000.0)
    pool._cancel_requested.clear()
    # a blown deadline raises the taxonomy error
    now[0] = 1051.0
    with pytest.raises(DeadlineError):
        pool._heartbeat(job, started_wall=1000.0)
    pool.close()


def test_higher_priority_job_preempts_running_cell(tmp_path):
    plan = FaultPlan().add("nw", "baseline", FaultKind.TIMEOUT)
    pool = make_pool(
        tmp_path,
        fault_plan=plan,
        timeout=2.0,
        retry=RetryPolicy(max_attempts=1),
    )
    pool.submit("nw", "baseline", priority=0)
    submitted = []

    def rival_submit():
        if not submitted:
            submitted.append(True)
            pool.submit("nw", "sched", priority=5)

    pool.on_heartbeat = rival_submit
    pool.run()
    pool.close()
    rival = pool.state.jobs["nw:sched"]
    victim = pool.state.jobs["nw:baseline"]
    assert rival.state == DONE
    assert pool.state.counters["reclaimed"] >= 1
    # the preempted cell kept its attempts and ran again afterwards
    # (its injected fault then times it out terminally)
    assert victim.state == FAILED
    assert victim.error_class == "timeout"
    # the rival finished BEFORE the victim's final record
    assert rival.updated_seq < victim.updated_seq


# --------------------------------------------------------------------- #
# Chaos: SIGKILL the daemon mid-request; retried request is answered
# byte-identically with no duplicate execution
# --------------------------------------------------------------------- #


def spawn_daemon(svc_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--daemon",
            "--scale", "micro", "--service-dir", svc_dir,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        cwd=REPO_ROOT,
    )


def wait_for_socket(svc_dir, timeout=30.0):
    client = DaemonClient(svc_dir, timeout=5.0)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client.ping()
            return client
        except Exception:
            time.sleep(0.1)
    raise RuntimeError("daemon subprocess never served the socket")


def test_sigkill_daemon_then_retry_is_byte_identical(tmp_path):
    svc_dir = str(tmp_path / "svc")
    proc = spawn_daemon(svc_dir)
    try:
        client = wait_for_socket(svc_dir)
        first = client.submit("nw", "baseline")
        key = first["key"]
        client.close()
        # kill -9 the daemon mid-request: the submit is journaled, the
        # result may or may not be — either way recovery must converge
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    proc2 = spawn_daemon(svc_dir)
    try:
        client = wait_for_socket(svc_dir)
        # the retried request carries the SAME idempotency key
        retried = client.submit("nw", "baseline", key=key)
        assert retried["job_id"] == first["job_id"]
        done = client.wait(key=key)
        assert done["state"] == DONE
        result_one = done["result"]
        # retry again: now it must come from the cache, byte-identical
        again = client.submit("nw", "baseline", key=key)
        assert again["cached"] is True
        assert again["result"] == result_one
        client.shutdown()
        client.close()
        proc2.wait(timeout=30)
    finally:
        if proc2.poll() is None:
            proc2.kill()
            proc2.wait(timeout=10)
    # no duplicate cell execution: the journal holds exactly one DONE
    # record for the job across both incarnations
    journal = Journal(os.path.join(svc_dir, "journal.jsonl"))
    records = journal.replay()
    done_records = [
        r for r in records
        if r["type"] == "done" and r["payload"]["job_id"] == "nw:baseline"
    ]
    snapshots = [r for r in records if r["type"] == "snapshot"]
    if snapshots:
        # shutdown compacted the log: the snapshot must agree instead
        assert len(done_records) <= 1
    else:
        assert len(done_records) == 1
    # and the durable cache entry is intact and validates
    from repro.service import ResultCache, RESULTS_DIR

    cache = ResultCache(os.path.join(svc_dir, RESULTS_DIR))
    entry = cache.get(key)
    assert entry is not None
    assert entry["result"]["cycles"] == result_one["cycles"]
