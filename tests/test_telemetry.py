"""Tests for repro.telemetry: tracer, sampler, manifests, summaries,
determinism, and the zero-overhead disabled path."""

import json

import pytest

from repro import BASELINE_CONFIG
from repro.engine.simulator import Simulator
from repro.engine.stats import Histogram, StatRegistry
from repro.system import build_gpu
from repro.telemetry import (
    CAT_TB,
    CAT_TLB,
    DEFAULT_SERIES,
    NULL_TRACER,
    NullTracer,
    RunManifest,
    TimeSeriesSampler,
    Tracer,
    config_hash,
    interval_rate,
    load_trace,
    manifest_path_for,
    merge_traces,
    summarize_trace,
)
from repro.workloads import make_benchmark


def run_traced(benchmark="nw", scale="micro", seed=0, config=None,
               sample_every=None):
    """Run one kernel with telemetry on; returns (result, tracer, sampler)."""
    tracer = Tracer()
    sampler = TimeSeriesSampler(sample_every) if sample_every else None
    sim = Simulator(tracer=tracer, sampler=sampler)
    gpu = build_gpu(config or BASELINE_CONFIG, sim=sim)
    kernel = make_benchmark(benchmark, scale=scale, seed=seed)
    result = gpu.run(kernel)
    return result, tracer, sampler


# ---------------------------------------------------------------------- #
# Tracer
# ---------------------------------------------------------------------- #
class TestTracer:
    def test_track_allocation_is_stable(self):
        tracer = Tracer()
        a = tracer.track("alpha")
        b = tracer.track("beta")
        assert a != b
        assert tracer.track("alpha") == a  # idempotent
        assert 0 not in (a, b)  # tid 0 reserved for counter events

    def test_records_events(self):
        tracer = Tracer()
        lane = tracer.track("lane")
        tracer.instant(CAT_TLB, "miss", 10.0, lane, {"vpn": 7})
        tracer.complete(CAT_TB, "tb", 5.0, 20.0, lane, {"tb": 1})
        tracer.counter("tlb", 30.0, {"misses": 3})
        assert tracer.num_events == 3

    def test_chrome_export_shape(self):
        tracer = Tracer()
        lane = tracer.track("SM0")
        tracer.instant(CAT_TLB, "miss", 10.0, lane)
        tracer.complete(CAT_TB, "tb", 5.0, 20.0, lane)
        events = tracer.to_chrome(pid=3, label="cell")
        meta = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name", "thread_sort_index"} <= {
            m["name"] for m in meta
        }
        proc = next(m for m in meta if m["name"] == "process_name")
        assert proc["args"]["name"] == "cell" and proc["pid"] == 3
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t" and "dur" not in instant
        span = next(e for e in events if e["ph"] == "X")
        assert span["dur"] == 20.0

    def test_export_is_valid_json(self, tmp_path):
        tracer = Tracer()
        tracer.instant(CAT_TLB, "miss", 1.0, tracer.track("x"))
        path = tracer.export(str(tmp_path / "t.json"))
        payload = json.load(open(path))
        assert payload["otherData"]["clock"] == "gpu-cycles"
        assert any(e["ph"] == "i" for e in payload["traceEvents"])

    def test_merge_relabels_pids_and_processes(self, tmp_path):
        parts = []
        for i, label in enumerate(["bfs:baseline", "bfs:ours"]):
            tracer = Tracer()
            tracer.instant(CAT_TLB, "miss", float(i), tracer.track("x"))
            path = str(tmp_path / f"part{i}.json")
            tracer.export(path)
            parts.append((label, path))
        merged = merge_traces(parts, str(tmp_path / "merged.json"))
        events = json.load(open(merged))["traceEvents"]
        assert {e["pid"] for e in events} == {0, 1}
        names = [e["args"]["name"] for e in events
                 if e.get("name") == "process_name"]
        assert names == ["bfs:baseline", "bfs:ours"]


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.track("anything") == 0
        NULL_TRACER.instant("c", "n", 0.0, 0)
        NULL_TRACER.complete("c", "n", 0.0, 1.0, 0)
        NULL_TRACER.counter("n", 0.0, {})
        assert NULL_TRACER.num_events == 0

    def test_tracer_is_a_null_tracer(self):
        # components can hold either under one type
        assert isinstance(Tracer(), NullTracer)
        assert Tracer().enabled is True


# ---------------------------------------------------------------------- #
# Sampler
# ---------------------------------------------------------------------- #
class TestSampler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(0)

    def test_samples_on_interval_crossings(self):
        sampler = TimeSeriesSampler(100, series=())
        sampler._registry = StatRegistry()
        for now in (10, 50, 100, 101, 250):
            sampler.on_time_advance(now)
        # crossings at 100 and 250; a big jump yields ONE sample
        assert sampler.cycles == [100, 250]

    def test_finalize_takes_trailing_sample_once(self):
        sampler = TimeSeriesSampler(100, series=())
        sampler._registry = StatRegistry()
        sampler.on_time_advance(100)
        sampler.finalize(140)
        sampler.finalize(140)
        assert sampler.cycles == [100, 140]

    def test_probe_columns_and_duplicates(self):
        sampler = TimeSeriesSampler(10, series=())
        sampler._registry = StatRegistry()
        sampler.add_probe("occupancy", lambda: 4)
        with pytest.raises(ValueError):
            sampler.add_probe("occupancy", lambda: 4)
        sampler.sample(10)
        assert sampler.to_dict()["series"]["occupancy"] == [4.0]

    def test_glob_series_sum_counters(self):
        registry = StatRegistry()
        registry.group("sm0_l1tlb").counter("misses").inc(3)
        registry.group("sm1_l1tlb").counter("misses").inc(5)
        sampler = TimeSeriesSampler(
            10, series=(("l1_tlb_misses", "sm*_l1tlb", "misses"),)
        )
        sampler._registry = registry
        sampler.sample(10)
        assert sampler.columns["l1_tlb_misses"] == [8]

    def test_sampling_does_not_create_counters(self):
        """Polling a stat a group doesn't own must not add a 0 counter."""
        registry = StatRegistry()
        registry.group("sm0_l1tlb").counter("misses").inc(1)
        sampler = TimeSeriesSampler(10)  # DEFAULT_SERIES polls sharing_spills
        sampler._registry = registry
        sampler.sample(10)
        assert "sharing_spills" not in registry.group("sm0_l1tlb").as_dict()

    def test_interval_rate(self):
        # cumulative misses / hits; middle interval is idle
        rates = interval_rate([2, 2, 5], [2, 2, 5])
        assert rates == [0.5, None, 0.5]

    def test_integrated_run_produces_monotonic_series(self):
        result, _, sampler = run_traced(sample_every=500)
        ts = result.timeseries
        assert ts is not None and ts["interval"] == 500
        assert len(ts["cycles"]) >= 2
        assert ts["cycles"] == sorted(ts["cycles"])
        for name, _, _ in DEFAULT_SERIES:
            col = ts["series"][name]
            assert len(col) == len(ts["cycles"])
            assert all(b >= a for a, b in zip(col, col[1:])), name
        # the final sample covers end-of-run (finalize)
        assert ts["cycles"][-1] == result.cycles
        # the resident-TB probe wired by build_gpu is present
        assert "resident_tbs" in ts["series"]

    def test_sampler_mirrors_counters_into_tracer(self):
        _, tracer, _ = run_traced(sample_every=500)
        counters = [e for e in tracer.events() if e[0] == "C"]
        assert counters
        assert any(e[5] == "tlb" for e in counters)


# ---------------------------------------------------------------------- #
# Manifest
# ---------------------------------------------------------------------- #
class TestManifest:
    def test_roundtrip(self, tmp_path):
        manifest = RunManifest(
            artifact_kind="trace",
            artifact_path=str(tmp_path / "t.json"),
            scale="micro",
            seed=7,
            benchmarks=["bfs"],
            config_hashes={"baseline": "abc"},
        )
        path = manifest.write()
        assert path == manifest_path_for(str(tmp_path / "t.json"))
        loaded = RunManifest.load(path)
        assert loaded.seed == 7
        assert loaded.config_hashes == {"baseline": "abc"}
        assert loaded.artifact_kind == "trace"

    def test_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ValueError):
            RunManifest.load(str(path))

    def test_deterministic_dict_drops_wall_time(self):
        manifest = RunManifest(artifact_kind="trace", artifact_path="t")
        payload = manifest.deterministic_dict()
        for name in ("created_unix", "created_iso", "wall_time_s", "git_sha"):
            assert name not in payload
        assert payload["artifact_path"] == "t"

    def test_config_hash_stable_and_discriminating(self):
        import dataclasses

        assert config_hash(BASELINE_CONFIG) == config_hash(BASELINE_CONFIG)
        other = dataclasses.replace(BASELINE_CONFIG, l1_tlb_entries=256)
        assert config_hash(other) != config_hash(BASELINE_CONFIG)


# ---------------------------------------------------------------------- #
# Trace summary
# ---------------------------------------------------------------------- #
class TestSummary:
    def test_summarizes_real_trace(self, tmp_path):
        result, tracer, _ = run_traced()
        path = tracer.export(str(tmp_path / "t.json"))
        summary = summarize_trace(load_trace(path))
        assert summary.total_events == tracer.num_events
        assert summary.by_category["tlb"] > 0
        assert summary.tb_spans == result.tbs_completed
        sm, count = summary.busiest_sm()
        assert sm.startswith("SM") and count > 0
        text = summary.format(top=3)
        assert "busiest SM" in text and "events" in text

    def test_top_miss_tbs_use_global_indices(self, tmp_path):
        _, tracer, _ = run_traced()
        summary = summarize_trace(json.loads(tracer.dumps()))
        tops = summary.top_miss_tbs(3)
        assert tops == sorted(tops, key=lambda kv: -kv[1])


# ---------------------------------------------------------------------- #
# Determinism (satellite 3)
# ---------------------------------------------------------------------- #
class TestDeterminism:
    def test_equal_seed_runs_trace_identically(self):
        _, t1, _ = run_traced(seed=3, sample_every=500)
        _, t2, _ = run_traced(seed=3, sample_every=500)
        assert t1.dumps() == t2.dumps()

    def test_telemetry_does_not_perturb_results(self):
        """Tracing+sampling must observe, never steer, the simulation."""
        kernel = make_benchmark("nw", scale="micro", seed=0)
        plain = build_gpu(BASELINE_CONFIG).run(kernel)
        traced, _, _ = run_traced(sample_every=500)
        assert traced.cycles == plain.cycles
        assert traced.stats == plain.stats

    def test_disabled_run_matches_plain_run(self):
        kernel = make_benchmark("nw", scale="micro", seed=0)
        plain = build_gpu(BASELINE_CONFIG).run(kernel)
        sim = Simulator()  # defaults: NULL_TRACER, no sampler
        off = build_gpu(BASELINE_CONFIG, sim=sim).run(kernel)
        assert off.cycles == plain.cycles
        assert off.stats == plain.stats


# ---------------------------------------------------------------------- #
# Overhead guard (satellite 5)
# ---------------------------------------------------------------------- #
class _SpyTracer(NullTracer):
    """Disabled tracer that counts hot-path calls: must stay at zero."""

    __slots__ = ("calls",)
    enabled = False

    def __init__(self):
        self.calls = 0

    def track(self, name):
        return 0  # wiring-time, allowed

    def instant(self, *a, **k):
        self.calls += 1

    def complete(self, *a, **k):
        self.calls += 1

    def counter(self, *a, **k):
        self.calls += 1


class TestDisabledOverhead:
    def test_default_simulator_uses_null_singleton(self):
        assert Simulator().tracer is NULL_TRACER

    def test_components_cache_none_when_disabled(self):
        gpu = build_gpu(BASELINE_CONFIG)
        assert gpu.sms[0]._tracer is None
        assert gpu.sms[0].l1_tlb._tracer is None
        assert gpu.l2_tlb._tracer is None
        assert gpu.walkers._tracer is None
        assert gpu.scheduler._tracer is None

    def test_disabled_run_never_calls_tracer(self):
        spy = _SpyTracer()
        sim = Simulator(tracer=spy)
        gpu = build_gpu(BASELINE_CONFIG, sim=sim)
        gpu.run(make_benchmark("nw", scale="micro", seed=0))
        assert spy.calls == 0

    def test_event_queue_watcher_disabled_by_default(self):
        assert Simulator().queue.time_watcher is None
