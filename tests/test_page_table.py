"""Unit tests for the radix page table and UVM manager."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.translation.address import GEOMETRY_2M, GEOMETRY_4K, PageGeometry
from repro.translation.page_table import PageTable
from repro.translation.uvm import AllocationPolicy, UVMManager


class TestPageTable:
    def test_map_and_walk(self):
        pt = PageTable()
        pt.map(0x1234, 0x9999)
        outcome = pt.walk(0x1234)
        assert not outcome.faulted
        assert outcome.ppn == 0x9999
        assert outcome.levels_touched == 4

    def test_walk_unmapped_faults(self):
        pt = PageTable()
        outcome = pt.walk(0x42)
        assert outcome.faulted
        assert 1 <= outcome.levels_touched <= 4

    def test_huge_pages_use_three_levels(self):
        pt = PageTable(GEOMETRY_2M)
        pt.map(1, 2)
        assert pt.walk(1).levels_touched == 3

    def test_unmap(self):
        pt = PageTable()
        pt.map(5, 6)
        assert pt.unmap(5)
        assert not pt.unmap(5)
        assert pt.walk(5).faulted
        assert len(pt) == 0

    def test_remap_replaces(self):
        pt = PageTable()
        pt.map(5, 6)
        pt.map(5, 7)
        assert pt.lookup(5) == 7
        assert len(pt) == 1

    def test_contains(self):
        pt = PageTable()
        pt.map(10, 20)
        assert 10 in pt
        assert 11 not in pt

    @given(st.dictionaries(st.integers(min_value=0, max_value=2**36 - 1),
                           st.integers(min_value=0, max_value=2**30),
                           min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_property_walk_returns_mapped_value(self, mapping):
        pt = PageTable()
        for vpn, ppn in mapping.items():
            pt.map(vpn, ppn)
        assert len(pt) == len(mapping)
        for vpn, ppn in mapping.items():
            assert pt.lookup(vpn) == ppn


class TestGeometry:
    def test_vpn_offset_roundtrip(self):
        g = GEOMETRY_4K
        addr = 0x12345678
        assert g.address(g.vpn(addr), g.offset(addr)) == addr

    def test_page_sizes(self):
        assert GEOMETRY_4K.offset_bits == 12
        assert GEOMETRY_2M.offset_bits == 21

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            PageGeometry(3000)

    def test_pages_spanned(self):
        g = GEOMETRY_4K
        assert g.pages_spanned(0, 4096) == 1
        assert g.pages_spanned(4095, 2) == 2
        assert g.pages_spanned(0, 0) == 0

    def test_offset_out_of_range(self):
        with pytest.raises(ValueError):
            GEOMETRY_4K.address(1, 4096)


class TestUVM:
    def test_first_touch_faults_then_resident(self):
        uvm = UVMManager(far_fault_latency=1000.0)
        ppn, latency = uvm.ensure_mapped(7)
        assert latency == 1000.0
        ppn2, latency2 = uvm.ensure_mapped(7)
        assert (ppn2, latency2) == (ppn, 0.0)
        assert uvm.fault_count == 1

    def test_contiguous_policy_preserves_adjacency(self):
        uvm = UVMManager(policy=AllocationPolicy.CONTIGUOUS)
        p0, _ = uvm.ensure_mapped(100)
        p1, _ = uvm.ensure_mapped(101)
        assert p1 == p0 + 1

    def test_fragmented_policy_scatters(self):
        uvm = UVMManager(policy=AllocationPolicy.FRAGMENTED)
        p0, _ = uvm.ensure_mapped(100)
        p1, _ = uvm.ensure_mapped(101)
        assert p1 != p0 + 1

    def test_populate_prefaults(self):
        uvm = UVMManager(far_fault_latency=1000.0)
        uvm.populate(0, 16)
        assert uvm.resident_pages == 16
        _ppn, latency = uvm.ensure_mapped(3)
        assert latency == 0.0
        assert uvm.fault_count == 0

    def test_footprint_accounting(self):
        uvm = UVMManager()
        uvm.populate(0, 4)
        assert uvm.footprint_bytes == 4 * 4096

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                    max_size=200))
    @settings(max_examples=30)
    def test_property_mapping_is_stable(self, vpns):
        uvm = UVMManager()
        first = {v: uvm.ensure_mapped(v)[0] for v in vpns}
        for v in vpns:
            assert uvm.ensure_mapped(v) == (first[v], 0.0)
        # Distinct pages must get distinct frames.
        assert len(set(first.values())) == len(first)
