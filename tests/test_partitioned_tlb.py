"""Unit tests for TB-id TLB partitioning and dynamic set sharing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partitioned_tlb import (
    CompressedPartitionedL1TLB,
    PartitionedL1TLB,
    TBIDIndexPolicy,
)
from repro.core.set_sharing import (
    AllToAllSharingRegister,
    CounterSharingRegister,
    SharingRegister,
)


class TestTBIDIndexPolicy:
    def test_even_partitioning_16_tbs_16_sets(self):
        policy = TBIDIndexPolicy(16, occupancy=16)
        owned = [tuple(policy.sets_for(t)) for t in range(16)]
        assert owned == [(i,) for i in range(16)]

    def test_four_tbs_get_four_sets_each(self):
        policy = TBIDIndexPolicy(16, occupancy=4)
        assert list(policy.sets_for(0)) == [0, 1, 2, 3]
        assert list(policy.sets_for(3)) == [12, 13, 14, 15]

    def test_all_sets_covered_with_odd_occupancy(self):
        policy = TBIDIndexPolicy(16, occupancy=3)
        covered = sorted(
            s for t in range(3) for s in policy.sets_for(t)
        )
        assert covered == list(range(16))

    def test_more_tbs_than_sets_share_from_start(self):
        # Paper footnote 1: occupancy > sets => TBs share sets initially.
        policy = TBIDIndexPolicy(4, occupancy=8)
        assert tuple(policy.sets_for(0)) == tuple(policy.sets_for(4))

    def test_requires_tb_id(self):
        policy = TBIDIndexPolicy(16, occupancy=16)
        with pytest.raises(ValueError):
            policy.lookup_sets(0, None)

    def test_lookup_includes_shared_partner_sets(self):
        sharing = SharingRegister(16)
        sharing.configure_occupancy(16)
        policy = TBIDIndexPolicy(16, occupancy=16, sharing=sharing)
        assert list(policy.lookup_sets(0, 3)) == [3]
        sharing.record_spill(3)
        assert list(policy.lookup_sets(0, 3)) == [3, 4]


class TestPartitionedL1TLB:
    def make(self, occupancy=16, sharing=None):
        tlb = PartitionedL1TLB(64, 4, 1.0, sharing=sharing)
        tlb.configure_occupancy(occupancy)
        return tlb

    def test_isolation_between_tbs(self):
        tlb = self.make()
        tlb.insert(100, 1, tb_id=0)
        assert tlb.probe(100, tb_id=0).hit
        assert not tlb.probe(100, tb_id=1).hit

    def test_full_vpn_match_any_page_any_set(self):
        # TB-id indexing stores the whole VPN: any page can live in any set.
        tlb = self.make()
        tlb.insert(0, 10, tb_id=5)
        tlb.insert(16, 26, tb_id=5)   # would alias set 0 under VPN indexing
        assert tlb.probe(0, tb_id=5).ppn == 10
        assert tlb.probe(16, tb_id=5).ppn == 26

    def test_eviction_confined_to_own_set_without_sharing(self):
        tlb = self.make()
        for v in range(5):  # 4-way set: fifth insert evicts
            tlb.insert(v, v, tb_id=0)
        assert tlb.occupancy == 4
        assert not tlb.probe(0, tb_id=0).hit  # LRU evicted

    def test_multi_set_tb_probes_cost_more(self):
        tlb = self.make(occupancy=4)  # 4 sets per TB
        tlb.insert(7, 70, tb_id=0)
        result = tlb.probe(8, tb_id=0)  # miss probes all 4 sets
        assert result.sets_probed == 4
        assert tlb.probe_latency(result.sets_probed) == 4.0

    def test_no_flush_on_tb_finish(self):
        # Paper: TB ids are recycled without flushing, preserving entries.
        tlb = self.make()
        tlb.insert(55, 5, tb_id=2)
        tlb.on_tb_finished(2)
        assert tlb.probe(55, tb_id=2).hit

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 4096)),
                    min_size=1, max_size=400))
    @settings(max_examples=40)
    def test_property_no_cross_tb_visibility_without_sharing(self, ops):
        tlb = self.make()
        inserted = {}
        for tb, vpn in ops:
            tlb.insert(vpn, vpn + 1, tb_id=tb)
            inserted[(tb, vpn)] = True
        for tb, vpn in inserted:
            for other in range(16):
                if other != tb:
                    result = tlb.probe(vpn, tb_id=other)
                    # A hit from another TB only if that TB inserted it too.
                    if result.hit:
                        assert (other, vpn) in inserted


class TestSetSharing:
    def make_sharing(self):
        sharing = SharingRegister(16)
        tlb = PartitionedL1TLB(64, 4, 1.0, sharing=sharing)
        tlb.configure_occupancy(16)
        return tlb, sharing

    def test_spill_to_adjacent_sets_flag(self):
        tlb, sharing = self.make_sharing()
        for v in range(5):  # overflow TB 0's set; evictee spills to TB 1
            tlb.insert(v, v, tb_id=0)
        assert sharing.is_sharing(0)
        assert tlb.probe(0, tb_id=0).hit        # found in the shared set
        assert tlb.stats.counter("sharing_spills").value == 1

    def test_no_spill_when_neighbor_full(self):
        tlb, sharing = self.make_sharing()
        for v in range(100, 104):
            tlb.insert(v, v, tb_id=1)           # fill TB 1's set
        for v in range(5):
            tlb.insert(v, v, tb_id=0)
        assert not sharing.is_sharing(0)
        assert not tlb.probe(0, tb_id=0).hit

    def test_flag_reset_on_tb_finish(self):
        tlb, sharing = self.make_sharing()
        for v in range(5):
            tlb.insert(v, v, tb_id=0)
        assert sharing.is_sharing(0)
        tlb.on_tb_finished(1)                   # TB 1 owns the shared set
        assert not sharing.is_sharing(0)

    def test_sharing_lookup_latency_includes_partner_sets(self):
        tlb, sharing = self.make_sharing()
        for v in range(5):
            tlb.insert(v, v, tb_id=0)
        result = tlb.probe(999, tb_id=0)        # miss probes own + partner
        assert result.sets_probed == 2


class TestSharingRegisters:
    def test_one_bit_register_neighbor_wraps(self):
        r = SharingRegister(16)
        r.configure_occupancy(4)
        assert r.neighbor(3) == 0

    def test_register_bits_cost(self):
        assert SharingRegister(16).bits == 16
        assert AllToAllSharingRegister(16).bits == 256

    def test_counter_register_needs_threshold(self):
        r = CounterSharingRegister(16, threshold=3)
        r.configure_occupancy(16)
        r.record_spill(2)
        r.record_spill(2)
        assert not r.is_sharing(2)
        r.record_spill(2)
        assert r.is_sharing(2)

    def test_counter_reset_on_finish(self):
        r = CounterSharingRegister(16, threshold=2)
        r.configure_occupancy(16)
        r.record_spill(2)
        r.record_spill(2)
        r.on_tb_finished(2)
        assert not r.is_sharing(2)
        r.record_spill(2)
        assert not r.is_sharing(2)  # counter restarted

    def test_all_to_all_tracks_partners(self):
        r = AllToAllSharingRegister(16)
        r.configure_occupancy(16)
        r.record_spill_to(0, 7)
        r.record_spill_to(0, 3)
        assert r.partners(0) == [3, 7]
        r.on_tb_finished(7)
        assert r.partners(0) == [3]

    def test_invalid_occupancy(self):
        r = SharingRegister(16)
        with pytest.raises(ValueError):
            r.configure_occupancy(0)
        with pytest.raises(ValueError):
            r.configure_occupancy(17)


class TestCompressedPartitioned:
    def test_composition_of_partitioning_and_compression(self):
        tlb = CompressedPartitionedL1TLB(64, 4, 1.0, max_ratio=8)
        tlb.configure_occupancy(16)
        for v in range(8):
            tlb.insert(v, 100 + v, tb_id=0)
        assert tlb.occupancy == 1          # one compressed range entry
        assert tlb.probe(3, tb_id=0).ppn == 103
        assert not tlb.probe(3, tb_id=1).hit
