"""Tests for page-size support and fragmentation accounting."""

from hypothesis import given, settings, strategies as st

from repro.translation.address import PAGE_2M, PAGE_4K
from repro.translation.pagesize import (
    FragmentationReport,
    fragmentation_from_addresses,
    geometry_for,
)


def test_geometry_for_reuses_shared_instances():
    assert geometry_for(PAGE_4K).page_size == PAGE_4K
    assert geometry_for(PAGE_2M).page_size == PAGE_2M
    assert geometry_for(8192).page_size == 8192


def test_dense_region_has_high_utilization():
    addrs = range(0, PAGE_2M, PAGE_4K)  # touch every 4K page of one 2M
    report = fragmentation_from_addresses(addrs)
    assert report.huge_pages_committed == 1
    assert report.utilization == 1.0
    assert report.wasted_bytes == 0


def test_sparse_touches_waste_huge_pages():
    addrs = [i * PAGE_2M for i in range(8)]  # one 4K touch per 2M page
    report = fragmentation_from_addresses(addrs)
    assert report.huge_pages_committed == 8
    assert report.touched_small_pages == 8
    assert report.utilization == PAGE_4K / PAGE_2M
    assert report.wasted_bytes == 8 * (PAGE_2M - PAGE_4K)


def test_empty_report():
    report = FragmentationReport(0, 0)
    assert report.utilization == 1.0


@given(st.sets(st.integers(min_value=0, max_value=1 << 32), min_size=1,
               max_size=200))
@settings(max_examples=40)
def test_property_utilization_bounds(addresses):
    report = fragmentation_from_addresses(addresses)
    assert 0.0 < report.utilization <= 1.0
    assert report.committed_bytes >= report.touched_bytes
    # A 2M page holds 512 4K pages.
    assert report.touched_small_pages <= report.huge_pages_committed * 512
