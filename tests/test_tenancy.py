"""Tests for the multi-tenant subsystem (repro.tenancy).

The anchor property is the metamorphic identity: one tenant in
exclusive mode must reproduce the plain single-tenant machine
byte-for-byte — the whole tenancy layer must be a provable no-op at
n=1.  On top of that: per-tenant metrics, ASID relocation, scheduler
slice isolation, partition modes, the sub-entry TLB, the isolation
sanitizer tags, and the CLI path.
"""

import pytest

from repro.engine.errors import ConfigError, SanitizerError, WorkloadError
from repro.experiments.configs import get_config
from repro.sanitizer.core import SANITIZE_INJECT_ENV
from repro.sanitizer.selfcheck import suite_tenancy_identity
from repro.system import build_gpu
from repro.tenancy import (
    ADDRESS_SPACE_BITS,
    PARTITION_MODES,
    PPN_TAG_SHIFT,
    PartitionMode,
    TenancySpec,
    build_tenant_gpu,
    expand_mix,
    jain_fairness,
    parse_partition_mode,
    relocate_kernel,
)
from repro.workloads import make_benchmark


def _run_tenants(mix, mode, config="baseline", **spec_kwargs):
    spec = TenancySpec(
        mix=mix, mode=mode, scale="micro", **spec_kwargs
    )
    gpu = build_tenant_gpu(spec, get_config(config))
    return gpu.run_tenants()


# ---------------------------------------------------------------------- #
# Spec / mode plumbing
# ---------------------------------------------------------------------- #
class TestSpec:
    def test_partition_mode_names_are_stable(self):
        assert PARTITION_MODES == ("exclusive", "shared-tlb", "sub-entry")
        for name in PARTITION_MODES:
            assert parse_partition_mode(name).value == name

    def test_unknown_mode_is_config_error(self):
        with pytest.raises(ConfigError):
            parse_partition_mode("time-sliced")

    def test_tenant_count_bounds(self):
        with pytest.raises(ConfigError):
            TenancySpec(mix=())
        with pytest.raises(ConfigError):
            TenancySpec(mix=("bfs",) * 9)

    def test_expand_mix_cycles(self):
        assert expand_mix("bfs", 3) == ("bfs", "bfs", "bfs")
        assert expand_mix("bfs", 3, ["bfs", "gemm"]) == (
            "bfs", "gemm", "bfs",
        )

    def test_describe_is_json_ready(self):
        spec = TenancySpec(mix=("bfs", "gemm"), mode=PartitionMode.SUB_ENTRY)
        desc = spec.describe()
        assert desc["mix"] == ["bfs", "gemm"]
        assert desc["mode"] == "sub-entry"


# ---------------------------------------------------------------------- #
# ASID relocation
# ---------------------------------------------------------------------- #
class TestRelocation:
    def test_asid_zero_is_the_identity_object(self):
        kernel = make_benchmark("nw", scale="micro")
        assert relocate_kernel(kernel, 0) is kernel

    def test_relocation_offsets_every_address(self):
        kernel = make_benchmark("nw", scale="micro")
        moved = relocate_kernel(kernel, 2)
        offset = 2 << ADDRESS_SPACE_BITS
        orig = list(kernel.addresses())
        relocated = list(moved.addresses())
        assert relocated == [a + offset for a in orig]
        assert moved.name == kernel.name
        assert len(moved.tbs) == len(kernel.tbs)


# ---------------------------------------------------------------------- #
# The identity gate (the load-bearing metamorphic property)
# ---------------------------------------------------------------------- #
class TestIdentity:
    @pytest.mark.parametrize("config", ["baseline", "partition_sharing"])
    def test_one_tenant_exclusive_is_byte_identical(self, config):
        kernel = make_benchmark("bfs", scale="micro")
        base = build_gpu(get_config(config)).run(kernel)
        result = _run_tenants(("bfs",), PartitionMode.EXCLUSIVE, config)
        assert result.combined.to_dict() == base.to_dict()

    def test_selfcheck_suite_passes(self):
        outcome = suite_tenancy_identity("micro", 0)
        assert outcome.passed, outcome.detail


# ---------------------------------------------------------------------- #
# Multi-tenant runs: metrics & isolation
# ---------------------------------------------------------------------- #
class TestMultiTenant:
    @pytest.mark.parametrize("mode", list(PartitionMode))
    def test_two_tenants_complete_with_metrics(self, mode):
        result = _run_tenants(("bfs", "gemm"), mode)
        assert len(result.tenants) == 2
        assert result.mode == mode.value
        total_tbs = sum(t.tbs for t in result.tenants)
        assert result.combined.tbs_completed == total_tbs
        for t in result.tenants:
            assert t.ipc > 0
            assert 0 < t.finish_cycle <= result.combined.cycles
            assert t.l1_tlb_accesses > 0
        assert 0.0 < result.fairness_index <= 1.0 + 1e-9

    def test_exclusive_mode_has_zero_cross_evictions(self):
        result = _run_tenants(("bfs", "gemm"), PartitionMode.EXCLUSIVE)
        assert result.cross_tenant_evictions == 0

    def test_tenancy_stats_group_only_for_multi_tenant(self):
        solo = _run_tenants(("bfs",), PartitionMode.EXCLUSIVE)
        duo = _run_tenants(("bfs", "gemm"), PartitionMode.EXCLUSIVE)
        assert "tenancy" not in solo.combined.stats
        assert "tenancy" in duo.combined.stats

    def test_slowdowns_fill_from_solo_baselines(self):
        result = _run_tenants(("bfs", "gemm"), PartitionMode.SHARED_TLB)
        solos = {
            name: build_gpu(get_config("baseline"))
            .run(make_benchmark(name, scale="micro"))
            .cycles
            for name in ("bfs", "gemm")
        }
        result.apply_solo_baselines(solos)
        for t in result.tenants:
            assert t.slowdown == pytest.approx(
                t.finish_cycle / solos[t.benchmark]
            )
            # co-residency never beats running the machine alone
            assert t.slowdown >= 0.999

    def test_exclusive_scheduler_isolates_sm_slices(self):
        spec = TenancySpec(
            mix=("bfs", "gemm"), mode=PartitionMode.EXCLUSIVE, scale="micro"
        )
        gpu = build_tenant_gpu(spec, get_config("baseline"))
        gpu.run_tenants()
        sched = gpu.scheduler
        slices = [sched.sm_slice(t) for t in range(2)]
        assert set(slices[0]).isdisjoint(slices[1])
        assert sorted(list(slices[0]) + list(slices[1])) == list(
            range(len(gpu.sms))
        )
        # in exclusive mode a foreign tenant's VPNs never touch a slice
        for tid, sm_slice in enumerate(slices):
            for sm_id in sm_slice:
                tlb = gpu.sms[sm_id].l1_tlb
                for entries in tlb.sets:
                    for vpn in entries:
                        assert vpn >> (ADDRESS_SPACE_BITS - 12) == tid

    def test_sub_entry_mode_shares_entries_for_same_mix(self):
        # two copies of the same kernel touch the same base VPNs, the
        # best case for sub-entry sharing: fills must land without
        # whole-entry evictions
        result = _run_tenants(("bfs", "bfs"), PartitionMode.SUB_ENTRY)
        l2 = result.combined.stats["l2_tlb"]
        assert l2["sub_entry_fills"] > 0

    def test_jain_fairness(self):
        assert jain_fairness([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_fairness([1.0, 0.0]) == pytest.approx(0.5)
        assert jain_fairness([]) == 0.0


# ---------------------------------------------------------------------- #
# Sanitizer isolation tags
# ---------------------------------------------------------------------- #
class TestIsolationSanitizer:
    def _sanitized(self, mode, monkeypatch, tag):
        monkeypatch.setenv(SANITIZE_INJECT_ENV, tag)
        from repro.engine.simulator import Simulator
        from repro.sanitizer.core import Sanitizer

        spec = TenancySpec(
            mix=("bfs", "gemm"), mode=mode, scale="micro"
        )
        sim = Simulator(sanitizer=Sanitizer.make("strict"))
        gpu = build_tenant_gpu(spec, get_config("baseline"), sim=sim)
        return gpu

    def test_cross_tlb_injection_detected(self, monkeypatch):
        gpu = self._sanitized(
            PartitionMode.EXCLUSIVE, monkeypatch, "tenant.cross_tlb"
        )
        with pytest.raises(SanitizerError) as err:
            gpu.run_tenants()
        assert err.value.tag == "tenant.cross_tlb"

    def test_asid_leak_injection_detected(self, monkeypatch):
        gpu = self._sanitized(
            PartitionMode.SHARED_TLB, monkeypatch, "tenant.asid_leak"
        )
        with pytest.raises(SanitizerError) as err:
            gpu.run_tenants()
        assert err.value.tag == "tenant.asid_leak"

    @pytest.mark.parametrize("mode", list(PartitionMode))
    def test_clean_runs_pass_strict_sweeps(self, mode, monkeypatch):
        monkeypatch.delenv(SANITIZE_INJECT_ENV, raising=False)
        from repro.engine.simulator import Simulator
        from repro.sanitizer.core import Sanitizer

        spec = TenancySpec(mix=("bfs", "gemm"), mode=mode, scale="micro")
        sim = Simulator(sanitizer=Sanitizer.make("strict"))
        gpu = build_tenant_gpu(spec, get_config("baseline"), sim=sim)
        result = gpu.run_tenants()
        assert result.combined.tbs_completed > 0


# ---------------------------------------------------------------------- #
# Reproducibility plumbing (satellites 1 + 2)
# ---------------------------------------------------------------------- #
class TestPlumbing:
    def test_registry_rejects_duplicate_names(self):
        from repro.workloads import register_benchmark, unregister_benchmark

        with pytest.raises(WorkloadError):
            register_benchmark("bfs", lambda **kw: None)
        register_benchmark("tenancy_test_bench", lambda **kw: None)
        try:
            with pytest.raises(WorkloadError):
                register_benchmark("tenancy_test_bench", lambda **kw: None)
        finally:
            unregister_benchmark("tenancy_test_bench")

    def test_config_hash_folds_tenancy(self):
        from repro.telemetry.manifest import config_hash

        config = get_config("baseline")
        plain = config_hash(config)
        spec_a = TenancySpec(mix=("bfs", "gemm"))
        spec_b = TenancySpec(
            mix=("bfs", "gemm"), mode=PartitionMode.SUB_ENTRY
        )
        hash_a = config_hash(config, tenancy=spec_a.describe())
        hash_b = config_hash(config, tenancy=spec_b.describe())
        assert plain != hash_a
        assert hash_a != hash_b
        assert hash_a == config_hash(config, tenancy=spec_a.describe())

    def test_ppn_tags_stay_disjoint_from_frame_hashes(self):
        # the ASID tag must live above any PPN the fragmented allocator
        # can hand out, or tag extraction would corrupt routing
        from repro.translation.uvm import AllocationPolicy, UVMManager

        assert PPN_TAG_SHIFT >= 40
        uvm = UVMManager(policy=AllocationPolicy.FRAGMENTED)
        for vpn in range(0, 4096, 37):
            ppn, _ = uvm.ensure_mapped(vpn, 0.0)
            assert ppn < (1 << PPN_TAG_SHIFT)


# ---------------------------------------------------------------------- #
# Experiment + CLI surface
# ---------------------------------------------------------------------- #
class TestSurface:
    def test_experiment_section(self):
        from repro.experiments.runner import ExperimentRunner
        from repro.experiments.tenancy import run as run_tenancy

        runner = ExperimentRunner(scale="micro", benchmarks=("bfs", "gemm"))
        result = run_tenancy(runner)
        runner.close()
        assert set(result.results) == set(PARTITION_MODES)
        table = result.format_table()
        assert "fairness" in table and "bfs" in table
        checks = result.shape_checks()
        assert checks
        failed = [c for c in checks if not c.passed]
        assert not failed, [c.description for c in failed]

    def test_cli_tenants(self, capsys):
        from repro.cli import main

        assert main([
            "run", "bfs", "--scale", "micro", "--tenants", "2",
            "--tenant-mix", "bfs", "gemm", "--partition-mode", "shared-tlb",
        ]) == 0
        out = capsys.readouterr().out
        assert "partition mode   shared-tlb" in out
        assert "fairness (Jain)" in out
        assert "gemm" in out and "slowdown" in out

    def test_cli_rejects_checkpoint_with_tenants(self, capsys):
        from repro.cli import main

        code = main([
            "run", "bfs", "--scale", "micro", "--tenants", "2",
            "--checkpoint", "nope.jsonl",
        ])
        assert code == 3  # ConfigError exit code
