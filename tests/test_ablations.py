"""Smoke tests for the ablation and oversubscription experiments."""

import pytest

from repro.experiments import ablations, oversubscription
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale="micro", benchmarks=("nw", "gemm"))


def test_sharing_ablation_structure(runner):
    result = ablations.run_sharing_ablation(runner)
    for b in ("nw", "gemm"):
        assert set(result.times[b]) == {"one_bit", "counter", "all_to_all"}
        for t in result.times[b].values():
            assert t > 0
    assert "geomean" in result.format_table()
    assert len(result.shape_checks()) == 2


def test_geometry_sweep_structure(runner):
    result = ablations.run_geometry_sweep(
        runner, geometries=((64, 4), (256, 4))
    )
    assert set(result.hit_rates) == {(64, 4), (256, 4)}
    assert result.hit_rates[(256, 4)] >= result.hit_rates[(64, 4)] - 0.02
    assert result.format_table()


def test_warp_reuse_structure(runner):
    result = ablations.run_warp_reuse(runner)
    for share in result.warp_share.values():
        assert 0.0 <= share <= 1.0
    assert result.shape_checks()


def test_warp_scheduler_ablation_structure(runner):
    result = ablations.run_warp_scheduler_ablation(runner)
    for b in ("nw", "gemm"):
        assert result.times[b] > 0
        assert 0 <= result.hits_aware[b] <= 1
    assert result.format_table()


def test_oversubscription_structure(runner):
    result = oversubscription.run(
        runner, capacity_fraction=0.3, benchmarks=("nw",)
    )
    assert result.slowdown["nw"] > 0
    assert result.fault_rate["nw"] > 0
    assert result.ours_speedup["nw"] > 0
    assert result.mosaic_speedup["nw"] > 0
    assert 0 < result.mosaic_utilization["nw"] <= 1
    assert result.format_table()
    assert len(result.shape_checks()) == 3
