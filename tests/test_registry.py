"""Tests for the declarative translation-policy registry (ISSUE 10).

Covers the spec grammar, the identity guarantee (empty spec ==
``BASELINE_CONFIG``), the generated zoo matrix, and every typed
error path: malformed token, unknown dimension/component, duplicate
assignment, duplicate registration, tenancy-gated components, and
cross-component / validation conflicts — all must surface as
:class:`ConfigError` (exit code 3) naming the offending token.
"""

import pytest

from repro.arch.config import (
    BASELINE_CONFIG,
    CompressionKind,
    L1TLBMode,
    ReplacementKind,
    TBSchedulerKind,
)
from repro.engine.errors import ConfigError
from repro.translation.registry import (
    ZOO_SPECS,
    Component,
    PolicyRegistry,
    default_registry,
    resolve_spec,
    zoo_matrix,
)
from repro.translation.uvm import AllocationPolicy


class TestParsing:
    def test_empty_spec_fills_defaults(self):
        reg = default_registry()
        chosen = reg.parse("")
        assert set(chosen) == set(reg.dimensions())
        assert chosen["tlb"] == "shared"
        assert chosen["repl"] == "lru"
        assert chosen["protect"] == "none"

    def test_whitespace_and_empty_tokens_tolerated(self):
        reg = default_registry()
        assert reg.parse(" compress=contiguity , ,sched=tlb_aware ") == \
            reg.parse("compress=contiguity,sched=tlb_aware")

    def test_canonical_is_order_stable(self):
        reg = default_registry()
        a = reg.canonical("sched=tlb_aware,compress=stride")
        b = reg.canonical("compress=stride,sched=tlb_aware")
        assert a == b
        assert a.count("=") == len(reg.dimensions())

    def test_default_spec_round_trips(self):
        reg = default_registry()
        assert reg.canonical("") == reg.default_spec()


class TestErrorPaths:
    """Every user mistake is a ConfigError naming the offending token."""

    @pytest.mark.parametrize("spec,needle", [
        ("garbage", "garbage"),                  # malformed (no '=')
        ("=lru", "'=lru'"),                      # empty dimension
        ("repl=", "'repl='"),                    # empty component
        ("bogus=lru", "bogus=lru"),              # unknown dimension
        ("compress=bogus", "compress=bogus"),    # unknown component
        ("repl=lru,repl=fifo", "repl=fifo"),     # dimension assigned twice
    ])
    def test_parse_errors_name_offending_token(self, spec, needle):
        with pytest.raises(ConfigError) as excinfo:
            default_registry().parse(spec)
        assert needle in str(excinfo.value)
        assert excinfo.value.exit_code == 3
        assert excinfo.value.field  # token recorded for machine handling

    def test_tenancy_gated_component_rejected_single_tenant(self):
        with pytest.raises(ConfigError, match="tlb=subentry"):
            resolve_spec("tlb=subentry")
        # ... but resolves once tenancy wiring is promised
        assert resolve_spec("tlb=subentry", tenancy=True) == BASELINE_CONFIG

    def test_conflicting_combination_names_both_tokens(self):
        # dead-entry bypass and compressed entries both own the fill
        # path; GPUConfig rejects the pair and the registry re-raises
        # with the responsible token
        with pytest.raises(ConfigError, match="protect=deadentry"):
            resolve_spec("protect=deadentry,compress=contiguity")

    def test_mosaic_requires_base_pages(self):
        with pytest.raises(ConfigError, match="pagesize="):
            resolve_spec("pagesize=mosaic,pagesize=2m")

    def test_duplicate_registration_rejected(self):
        reg = PolicyRegistry()
        reg.register(Component("dim", "a", "first"), default=True)
        with pytest.raises(ConfigError, match="dim=a"):
            reg.register(Component("dim", "a", "again"))

    def test_second_default_rejected(self):
        reg = PolicyRegistry()
        reg.register(Component("dim", "a", "first"), default=True)
        with pytest.raises(ConfigError, match="dim=b"):
            reg.register(Component("dim", "b", "second"), default=True)

    def test_unknown_dimension_listing(self):
        with pytest.raises(ConfigError, match="bogus"):
            default_registry().components("bogus")

    def test_cross_component_field_conflict(self):
        reg = PolicyRegistry()
        reg.register(Component("x", "a", "", overrides={"page_size": 1}),
                     default=True)
        reg.register(Component("y", "b", "", overrides={"page_size": 2}),
                     default=True)
        with pytest.raises(ConfigError, match="page_size"):
            reg.resolve("x=a,y=b")


class TestResolution:
    def test_empty_spec_is_baseline_identity(self):
        # not merely equal: the very same object, identity by construction
        assert resolve_spec("") is BASELINE_CONFIG

    def test_all_defaults_spelled_out_is_baseline(self):
        reg = default_registry()
        assert reg.resolve(reg.default_spec()) == BASELINE_CONFIG

    def test_single_component_overrides_apply(self):
        cfg = resolve_spec("compress=contiguity")
        assert cfg.l1_tlb_compression
        assert cfg.compression_kind is CompressionKind.CONTIGUITY
        assert cfg.l1_tlb_mode is BASELINE_CONFIG.l1_tlb_mode

    def test_multi_component_composition(self):
        cfg = resolve_spec(
            "tlb=partitioned_sharing,sched=tlb_aware,repl=fifo"
        )
        assert cfg.l1_tlb_mode is L1TLBMode.PARTITIONED_SHARING
        assert cfg.tb_scheduler is TBSchedulerKind.TLB_AWARE
        assert cfg.l1_tlb_replacement is ReplacementKind.FIFO

    def test_mosaic_component(self):
        cfg = resolve_spec("pagesize=mosaic")
        assert cfg.allocation_policy is AllocationPolicy.MOSAIC

    def test_zoo_matrix_generated_from_specs(self):
        matrix = zoo_matrix()
        assert set(matrix) == set(ZOO_SPECS)
        assert matrix["zoo_baseline"] is BASELINE_CONFIG
        assert matrix["zoo_dead_entry"].l1_tlb_dead_entry
        assert (matrix["zoo_mosaic"].allocation_policy
                is AllocationPolicy.MOSAIC)

    def test_describe_lists_every_component(self):
        reg = default_registry()
        lines = "\n".join(reg.describe())
        for dim in reg.dimensions():
            for component in reg.components(dim):
                assert component.token in lines
