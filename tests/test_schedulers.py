"""Unit tests for TB schedulers and the TLB status table."""

import pytest

from repro.core.status_table import TLBStatusTable
from repro.core.tb_scheduler import (
    RoundRobinScheduler,
    TLBAwareScheduler,
    make_scheduler,
)
from repro.arch.config import TBSchedulerKind


class FakeSM:
    def __init__(self, sm_id, free=True, hits=0, total=0):
        self.sm_id = sm_id
        self.free = free
        self.l1_tlb_hits = hits
        self.l1_tlb_accesses = total

    def has_free_slot(self):
        return self.free


class TestStatusTable:
    def test_instant_miss_rate_from_deltas(self):
        t = TLBStatusTable(2, ema_alpha=1.0)
        t.update(0, hits=50, total=100)
        assert t.miss_rate(0) == pytest.approx(0.5)
        t.update(0, hits=50, total=200)  # window: 0 hits of 100
        assert t.miss_rate(0) == pytest.approx(1.0)

    def test_ema_smoothing(self):
        t = TLBStatusTable(1, ema_alpha=0.5)
        t.update(0, 0, 100)      # miss rate 1.0
        t.update(0, 100, 200)    # window miss 0.0 -> EMA 0.5
        assert t.miss_rate(0) == pytest.approx(0.5)

    def test_no_data_returns_none(self):
        t = TLBStatusTable(4)
        assert t.miss_rate(2) is None
        assert t.mean_miss_rate() is None

    def test_counters_must_be_monotonic(self):
        t = TLBStatusTable(1)
        t.update(0, 10, 20)
        with pytest.raises(ValueError):
            t.update(0, 5, 30)

    def test_refresh_from_sms(self):
        t = TLBStatusTable(2)
        sms = [FakeSM(0, hits=10, total=100), FakeSM(1, hits=90, total=100)]
        t.refresh_from(sms)
        assert t.miss_rate(0) > t.miss_rate(1)

    def test_hardware_size_matches_paper(self):
        # 16 entries x (4-bit SM id + two 32-bit counters) = 136 bytes.
        assert TLBStatusTable(16).size_bytes == 136


class TestRoundRobin:
    def test_cycles_through_sms(self):
        sched = RoundRobinScheduler()
        sms = [FakeSM(i) for i in range(4)]
        picks = [sched.select_sm(sms).sm_id for _ in range(6)]
        assert picks == [0, 1, 2, 3, 0, 1]

    def test_skips_full_sms(self):
        sched = RoundRobinScheduler()
        sms = [FakeSM(0, free=False), FakeSM(1), FakeSM(2, free=False)]
        assert sched.select_sm(sms).sm_id == 1
        assert sched.select_sm(sms).sm_id == 1

    def test_returns_none_when_all_full(self):
        sched = RoundRobinScheduler()
        sms = [FakeSM(i, free=False) for i in range(3)]
        assert sched.select_sm(sms) is None


class TestTLBAware:
    def test_behaves_like_rr_before_any_traffic(self):
        sched = TLBAwareScheduler(4)
        sms = [FakeSM(i) for i in range(4)]
        assert sched.select_sm(sms).sm_id == 0
        assert sched.select_sm(sms).sm_id == 1

    def test_prefers_low_miss_rate_sm(self):
        sched = TLBAwareScheduler(2, ema_alpha=1.0)
        sms = [FakeSM(0, hits=10, total=100), FakeSM(1, hits=90, total=100)]
        # SM0 misses 90%, SM1 misses 10%: candidate SM0 is skipped.
        assert sched.select_sm(sms).sm_id == 1

    def test_falls_back_to_default_when_no_low_miss_sm_has_room(self):
        sched = TLBAwareScheduler(2, ema_alpha=1.0)
        sms = [FakeSM(0, hits=10, total=100),
               FakeSM(1, free=False, hits=90, total=100)]
        # Only the high-miss SM has room: paper says fall back, not stall.
        assert sched.select_sm(sms).sm_id == 0

    def test_returns_none_only_when_no_slot_anywhere(self):
        sched = TLBAwareScheduler(2)
        sms = [FakeSM(0, free=False), FakeSM(1, free=False)]
        assert sched.select_sm(sms) is None

    def test_never_throttles_parallelism(self):
        """Any free slot means a dispatch happens (paper: no throttling)."""
        sched = TLBAwareScheduler(3, ema_alpha=1.0)
        sms = [FakeSM(0, hits=0, total=100),
               FakeSM(1, hits=0, total=100),
               FakeSM(2, free=False, hits=100, total=100)]
        assert sched.select_sm(sms) is not None


def test_factory():
    assert isinstance(
        make_scheduler(TBSchedulerKind.ROUND_ROBIN, 16), RoundRobinScheduler
    )
    assert isinstance(
        make_scheduler(TBSchedulerKind.TLB_AWARE, 16), TLBAwareScheduler
    )
    with pytest.raises(ValueError):
        make_scheduler("bogus", 16)
