"""Property-based differential tests for the optimized hot paths.

PR 5 rewrote the event queue (pooled list entries, lazy cancellation,
batched drain) and the TLB index paths (interned set tuples, slot
caches) for speed.  These tests pin the optimized implementations
against deliberately naive oracles — a plain ``heapq`` of tuples for
the event queue, dict+list LRU sets for the TLB, and a re-derivation
from the paper's partitioning definition for the TB-id slot cache — on
randomized operation streams, so any semantic drift introduced by a
future optimization shows up as a counterexample, not as a golden-file
mystery.

Hypothesis drives the streams when available (it is in CI; see the
``ci`` profile registered in ``conftest.py``); otherwise a fixed set of
seeded ``random`` streams keeps the differential coverage alive.
"""

from __future__ import annotations

import heapq
import random

import pytest

from repro.engine.event_queue import EventQueue
from repro.translation.tlb import SetAssociativeTLB
from repro.core.partitioned_tlb import TBIDIndexPolicy

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is present in CI
    HAVE_HYPOTHESIS = False

FALLBACK_SEEDS = range(20)


# --------------------------------------------------------------------- #
# Event queue vs plain-heapq oracle
# --------------------------------------------------------------------- #
def run_queue_ops(ops):
    """Drive an EventQueue and a naive oracle with one op stream.

    Ops: ``("push", delay_quarters, priority)``, ``("cancel", index)``
    (cancels the index-th handle ever created — including handles whose
    event already ran or whose pooled entry was recycled, which must be
    safe no-ops), and ``("pop",)``.
    """
    q = EventQueue()
    ran = []
    handles = []
    oracle = []  # heap of (time, priority, seq)
    status = {}  # seq -> "pending" | "cancelled" | "run"
    next_seq = 0
    now = 0.0

    def make_cb(seq):
        return lambda: ran.append(seq)

    for op in ops:
        if op[0] == "push":
            t = now + op[1] * 0.25
            seq = next_seq
            next_seq += 1
            handles.append((q.schedule(t, make_cb(seq), op[2]), seq))
            heapq.heappush(oracle, (t, op[2], seq))
            status[seq] = "pending"
        elif op[0] == "cancel":
            if handles:
                handle, seq = handles[op[1] % len(handles)]
                handle.cancel()
                if status[seq] == "pending":
                    status[seq] = "cancelled"
                # run/recycled: the generation tag must make this a no-op
        else:  # pop
            while oracle and status[oracle[0][2]] != "pending":
                heapq.heappop(oracle)
            if not oracle:
                assert q.pop_and_run() is False
            else:
                t, _prio, seq = heapq.heappop(oracle)
                n_before = len(ran)
                assert q.pop_and_run() is True
                assert len(ran) == n_before + 1, "exactly one callback ran"
                assert ran[-1] == seq, "pop order diverged from oracle"
                assert q.now == t
                status[seq] = "run"
                now = t
        live = sum(1 for s in status.values() if s == "pending")
        assert len(q) == live
    # drain the rest: the full remaining order must match the oracle
    expected_tail = []
    while oracle:
        t, _prio, seq = heapq.heappop(oracle)
        if status[seq] == "pending":
            expected_tail.append(seq)
            status[seq] = "run"
    drained = []
    mark = len(ran)
    while q.pop_and_run():
        drained.append(ran[-1])
    assert ran[mark:] == expected_tail
    assert drained == expected_tail
    assert len(q) == 0


def _random_queue_ops(rng: random.Random, n: int = 150):
    ops = []
    for _ in range(n):
        r = rng.random()
        if r < 0.5:
            ops.append(("push", rng.randrange(0, 12), rng.randrange(-1, 2)))
        elif r < 0.7:
            ops.append(("cancel", rng.randrange(0, 256)))
        else:
            ops.append(("pop",))
    return ops


if HAVE_HYPOTHESIS:
    queue_ops = st.lists(
        st.one_of(
            st.tuples(
                st.just("push"),
                st.integers(min_value=0, max_value=12),
                st.integers(min_value=-1, max_value=1),
            ),
            st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=255)),
            st.tuples(st.just("pop")),
        ),
        max_size=150,
    )

    @given(queue_ops)
    @settings(max_examples=60, deadline=None)
    def test_event_queue_matches_heapq_oracle(ops):
        run_queue_ops(ops)

else:  # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("seed", FALLBACK_SEEDS)
    def test_event_queue_matches_heapq_oracle(seed):
        run_queue_ops(_random_queue_ops(random.Random(seed)))


# --------------------------------------------------------------------- #
# Set-associative TLB vs dict+list LRU oracle
# --------------------------------------------------------------------- #
def run_tlb_ops(num_sets, assoc, ops):
    """Drive the optimized TLB and a list-based LRU oracle in lockstep.

    Ops: ``("probe", vpn)`` / ``("insert", vpn)``; the PPN is a fixed
    function of the VPN so refreshes are observable.
    """
    tlb = SetAssociativeTLB(num_sets * assoc, assoc, lookup_latency=1.0)
    oracle = [[] for _ in range(num_sets)]  # each: [[vpn, ppn], ...] LRU-first
    hits = misses = evictions = 0
    for kind, vpn in ops:
        entries = oracle[vpn % num_sets]
        found = next((e for e in entries if e[0] == vpn), None)
        if kind == "probe":
            result = tlb.probe(vpn)
            assert result.sets_probed == 1
            if found is not None:
                hits += 1
                assert result.hit and result.ppn == found[1]
                entries.remove(found)
                entries.append(found)
            else:
                misses += 1
                assert not result.hit and result.ppn is None
        else:
            ppn = vpn * 7 + 3
            evicted = tlb.insert(vpn, ppn)
            if found is not None:
                found[1] = ppn
                entries.remove(found)
                entries.append(found)
                assert evicted is None
            else:
                if len(entries) >= assoc:
                    victim = entries.pop(0)
                    evictions += 1
                    assert evicted == victim[0]
                else:
                    assert evicted is None
                entries.append([vpn, ppn])
    assert tlb.stats.counter("hits").value == hits
    assert tlb.stats.counter("misses").value == misses
    assert tlb.stats.counter("evictions").value == evictions
    for set_idx in range(num_sets):
        stored = [[vpn, ppn] for vpn, ppn in tlb.sets[set_idx].items()]
        assert stored == oracle[set_idx], f"set {set_idx} diverged (LRU order)"


def _random_tlb_ops(rng: random.Random, n: int = 200):
    # small VPN space so sets fill, evict, and refresh frequently
    return [
        (("probe", "insert")[rng.randrange(2)], rng.randrange(0, 64))
        for _ in range(n)
    ]


if HAVE_HYPOTHESIS:
    tlb_ops = st.lists(
        st.tuples(
            st.sampled_from(["probe", "insert"]),
            st.integers(min_value=0, max_value=63),
        ),
        max_size=200,
    )

    @given(
        st.sampled_from([1, 2, 4, 8]),
        st.sampled_from([1, 2, 4]),
        tlb_ops,
    )
    @settings(max_examples=60, deadline=None)
    def test_tlb_matches_lru_oracle(num_sets, assoc, ops):
        run_tlb_ops(num_sets, assoc, ops)

else:  # pragma: no cover

    @pytest.mark.parametrize("seed", FALLBACK_SEEDS)
    def test_tlb_matches_lru_oracle(seed):
        rng = random.Random(seed)
        num_sets = rng.choice([1, 2, 4, 8])
        assoc = rng.choice([1, 2, 4])
        run_tlb_ops(num_sets, assoc, _random_tlb_ops(rng))


# --------------------------------------------------------------------- #
# TB-id slot cache vs the paper's partitioning definition
# --------------------------------------------------------------------- #
def check_tbid_policy(num_sets, occupancy, tb_id, vpn):
    """The precomputed slot cache must agree with §IV-B recomputed fresh:
    TB ``i`` owns sets ``[i*S//T, (i+1)*S//T)``; when ``T >= S`` each
    TB-id residue maps to one shared set."""
    policy = TBIDIndexPolicy(num_sets, occupancy=occupancy)
    if occupancy >= num_sets:
        expected_own = [tb_id % num_sets]
    else:
        bounds = [(i * num_sets) // occupancy for i in range(occupancy + 1)]
        slot = tb_id % occupancy
        expected_own = list(range(bounds[slot], bounds[slot + 1]))
    assert list(policy.sets_for(tb_id)) == expected_own
    assert list(policy.lookup_sets(vpn, tb_id)) == expected_own
    residue = (vpn // policy.granularity) % len(expected_own)
    preferred = expected_own[residue]
    assert list(policy.insert_sets(vpn, tb_id)) == (
        [preferred] + [s for s in expected_own if s != preferred]
    )
    if occupancy < num_sets:
        # every set owned by exactly one slot (no gaps, no overlap)
        owned = [s for slot in range(occupancy) for s in policy.sets_for(slot)]
        assert sorted(owned) == list(range(num_sets))


if HAVE_HYPOTHESIS:

    @given(
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=48),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=1 << 20),
    )
    @settings(max_examples=120, deadline=None)
    def test_tbid_slot_cache_matches_definition(num_sets, occupancy, tb_id, vpn):
        check_tbid_policy(num_sets, occupancy, tb_id, vpn)

else:  # pragma: no cover

    @pytest.mark.parametrize("seed", FALLBACK_SEEDS)
    def test_tbid_slot_cache_matches_definition(seed):
        rng = random.Random(seed)
        for _ in range(30):
            check_tbid_policy(
                rng.randrange(1, 33),
                rng.randrange(1, 49),
                rng.randrange(0, 64),
                rng.randrange(0, 1 << 20),
            )


def test_tbid_policy_rejects_missing_or_negative_tb():
    policy = TBIDIndexPolicy(8, occupancy=4)
    with pytest.raises(ValueError):
        policy.lookup_sets(0, None)
    with pytest.raises(ValueError):
        policy.lookup_sets(0, -1)
    with pytest.raises(ValueError):
        policy.insert_sets(0, -3)
    with pytest.raises(ValueError):
        policy.sets_for(-1)


# --------------------------------------------------------------------- #
# Dead-entry filter vs omniscient reuse oracle (ISSUE 10)
# --------------------------------------------------------------------- #
def run_dead_filter_ops(num_sets, assoc, threshold, ops):
    """Drive a dead-filtered TLB and a from-the-spec reuse oracle.

    The oracle tracks, per VPN, the consecutive count of fills that died
    (were dropped from the TLB) without a single hit; once the streak
    reaches ``threshold`` the next fill must be bypassed.  ``None``
    means never bypass — the filter must then be pure observation.
    """
    from repro.translation.tlb import DeadEntryFilter

    tlb = SetAssociativeTLB(num_sets * assoc, assoc, lookup_latency=1.0)
    tlb.attach_dead_filter(DeadEntryFilter(threshold))
    oracle = [[] for _ in range(num_sets)]  # [[vpn, ppn], ...] LRU-first
    pending = set()   # fills not yet proven live
    streak = {}       # vpn -> consecutive dead fills
    hits = misses = evictions = dead = bypassed = 0
    for kind, vpn in ops:
        entries = oracle[vpn % num_sets]
        found = next((e for e in entries if e[0] == vpn), None)
        if kind == "probe":
            result = tlb.probe(vpn)
            if found is not None:
                hits += 1
                assert result.hit and result.ppn == found[1]
                entries.remove(found)
                entries.append(found)
                if vpn in pending:  # reuse observed: the fill was live
                    pending.discard(vpn)
                    streak.pop(vpn, None)
            else:
                misses += 1
                assert not result.hit
        else:
            ppn = vpn * 7 + 3
            evicted = tlb.insert(vpn, ppn)
            if found is not None:  # refresh path: no fill event
                found[1] = ppn
                entries.remove(found)
                entries.append(found)
                assert evicted is None
                continue
            if threshold is not None and streak.get(vpn, 0) >= threshold:
                bypassed += 1  # predicted dead: no state may change
                assert evicted is None
                continue
            if len(entries) >= assoc:
                victim = entries.pop(0)
                evictions += 1
                assert evicted == victim[0]
                if victim[0] in pending:  # died without a hit
                    pending.discard(victim[0])
                    streak[victim[0]] = streak.get(victim[0], 0) + 1
                    dead += 1
            else:
                assert evicted is None
            entries.append([vpn, ppn])
            pending.add(vpn)
    filt = tlb.dead_filter
    assert tlb.stats.counter("hits").value == hits
    assert tlb.stats.counter("misses").value == misses
    assert tlb.stats.counter("evictions").value == evictions
    assert filt.dead_fills == dead
    assert filt.bypassed_fills == bypassed
    if threshold is None:
        assert bypassed == 0  # threshold=∞ must degenerate to no-bypass
    assert filt._pending == pending
    assert filt._streak == {v: s for v, s in streak.items() if s > 0}
    for set_idx in range(num_sets):
        stored = [[vpn, ppn] for vpn, ppn in tlb.sets[set_idx].items()]
        assert stored == oracle[set_idx], f"set {set_idx} diverged"


DEAD_THRESHOLDS = [1, 2, 3, None]

if HAVE_HYPOTHESIS:

    @given(
        st.sampled_from([1, 2, 4]),
        st.sampled_from([1, 2, 4]),
        st.sampled_from(DEAD_THRESHOLDS),
        tlb_ops,
    )
    @settings(max_examples=60, deadline=None)
    def test_dead_filter_matches_reuse_oracle(num_sets, assoc, threshold, ops):
        run_dead_filter_ops(num_sets, assoc, threshold, ops)

else:  # pragma: no cover

    @pytest.mark.parametrize("seed", FALLBACK_SEEDS)
    def test_dead_filter_matches_reuse_oracle(seed):
        rng = random.Random(seed)
        run_dead_filter_ops(
            rng.choice([1, 2, 4]),
            rng.choice([1, 2, 4]),
            rng.choice(DEAD_THRESHOLDS),
            _random_tlb_ops(rng),
        )


def test_dead_filter_threshold_none_is_pure_observation():
    """threshold=None: filtered TLB behaves bit-for-bit like a stock one."""
    from repro.translation.tlb import DeadEntryFilter

    rng = random.Random(7)
    stock = SetAssociativeTLB(16, 4, lookup_latency=1.0)
    filtered = SetAssociativeTLB(16, 4, lookup_latency=1.0)
    filtered.attach_dead_filter(DeadEntryFilter(None))
    for _ in range(5000):
        vpn = rng.randrange(0, 96)
        if rng.random() < 0.5:
            a, b = stock.probe(vpn), filtered.probe(vpn)
            assert (a.hit, a.ppn) == (b.hit, b.ppn)
        else:
            assert stock.insert(vpn, vpn + 1) == filtered.insert(vpn, vpn + 1)
    assert stock.hits == filtered.hits
    assert stock.misses == filtered.misses
    assert [dict(s) for s in stock.sets] == [dict(s) for s in filtered.sets]
    assert filtered.dead_filter.bypassed_fills == 0


# --------------------------------------------------------------------- #
# Contiguity TLB vs per-page dict model, at every run length (ISSUE 10)
# --------------------------------------------------------------------- #
def run_contiguity_ops(num_sets, assoc, max_ratio, ops):
    """Drive ContiguityTLB and a naive region-entry model in lockstep.

    Ops: ``("probe", vpn, _)`` / ``("insert", vpn, contiguous)`` where
    ``contiguous`` picks an offset-preserving frame (coalescible into
    the region anchor) or a scattered one (forces re-anchoring).
    """
    from repro.translation.compression import ContiguityTLB

    tlb = ContiguityTLB(
        num_sets * assoc, assoc, lookup_latency=1.0,
        max_ratio=max_ratio, decompression_latency=0.0,
    )
    # each set: [[region_base, anchor_ppn, bitmap], ...] LRU-first
    oracle = [[] for _ in range(num_sets)]
    hits = misses = evictions = coalesced = 0

    def index(vpn):
        return (vpn // max_ratio) % num_sets

    for kind, vpn, contiguous in ops:
        base, offset = vpn - vpn % max_ratio, vpn % max_ratio
        entries = oracle[index(vpn)]
        found = next((e for e in entries if e[0] == base), None)
        if kind == "probe":
            result = tlb.probe(vpn)
            if found is not None and (found[2] >> offset) & 1:
                hits += 1
                assert result.hit and result.ppn == found[1] + offset
                entries.remove(found)
                entries.append(found)
            else:
                misses += 1
                assert not result.hit
        else:
            ppn = (vpn + 1000) if contiguous else (vpn * 11 + 5)
            evicted = tlb.insert(vpn, ppn)
            if found is not None:
                if found[1] + offset == ppn:
                    if not (found[2] >> offset) & 1:
                        found[2] |= 1 << offset
                        coalesced += 1
                    entries.remove(found)
                    entries.append(found)
                    assert evicted is None
                    continue
                # mis-anchored frame: the stale entry is dropped and the
                # fill re-anchors fresh (never evicting — a slot just freed)
                entries.remove(found)
                entries.append([base, ppn - offset, 1 << offset])
                assert evicted is None
                continue
            if len(entries) >= assoc:
                victim = entries.pop(0)
                evictions += 1
                assert evicted == victim[0]
            else:
                assert evicted is None
            entries.append([base, ppn - offset, 1 << offset])
    assert tlb.stats.counter("hits").value == hits
    assert tlb.stats.counter("misses").value == misses
    assert tlb.stats.counter("evictions").value == evictions
    assert tlb.stats.counter("coalesced").value == coalesced
    assert tlb.pages_covered == sum(
        bin(e[2]).count("1") for s in oracle for e in s
    )
    for set_idx in range(num_sets):
        stored = [
            [b, anchor, bitmap]
            for b, (anchor, bitmap) in tlb.sets[set_idx].items()
        ]
        assert stored == oracle[set_idx], f"set {set_idx} diverged"


def _random_contiguity_ops(rng: random.Random, n: int = 250):
    return [
        (
            ("probe", "insert")[rng.randrange(2)],
            rng.randrange(0, 64),
            rng.random() < 0.8,
        )
        for _ in range(n)
    ]


CONTIGUITY_RUNS = [1, 2, 3, 4, 8]

if HAVE_HYPOTHESIS:
    contiguity_ops = st.lists(
        st.tuples(
            st.sampled_from(["probe", "insert"]),
            st.integers(min_value=0, max_value=63),
            st.booleans(),
        ),
        max_size=250,
    )

    @given(
        st.sampled_from([1, 2, 4]),
        st.sampled_from([1, 2, 4]),
        st.sampled_from(CONTIGUITY_RUNS),
        contiguity_ops,
    )
    @settings(max_examples=60, deadline=None)
    def test_contiguity_matches_dict_model(num_sets, assoc, max_ratio, ops):
        run_contiguity_ops(num_sets, assoc, max_ratio, ops)

else:  # pragma: no cover

    @pytest.mark.parametrize("seed", FALLBACK_SEEDS)
    @pytest.mark.parametrize("max_ratio", CONTIGUITY_RUNS)
    def test_contiguity_matches_dict_model(seed, max_ratio):
        rng = random.Random(seed)
        run_contiguity_ops(
            rng.choice([1, 2, 4]),
            rng.choice([1, 2, 4]),
            max_ratio,
            _random_contiguity_ops(rng),
        )


def test_contiguity_run_of_one_degenerates_to_stock():
    """max_ratio=1: every region is a single page, so the contiguity TLB
    must be observation-equivalent to the stock set-associative TLB."""
    from repro.translation.compression import ContiguityTLB

    rng = random.Random(11)
    stock = SetAssociativeTLB(32, 4, lookup_latency=1.0)
    contig = ContiguityTLB(
        32, 4, lookup_latency=1.0, max_ratio=1, decompression_latency=0.0
    )
    for _ in range(8000):
        vpn = rng.randrange(0, 128)
        r = rng.random()
        if r < 0.48:
            a, b = stock.probe(vpn), contig.probe(vpn)
            assert (a.hit, a.ppn) == (b.hit, b.ppn)
        elif r < 0.96:
            ppn = vpn * 13 + 1 if r < 0.9 else vpn * 17 + 2  # incl. remaps
            assert stock.insert(vpn, ppn) == contig.insert(vpn, ppn)
        else:
            assert stock.invalidate(vpn) == contig.invalidate(vpn)
    assert stock.hits == contig.hits
    assert stock.misses == contig.misses
    assert stock.stats.counter("evictions").value == \
        contig.stats.counter("evictions").value
    assert [list(s) for s in stock.sets] == [list(s) for s in contig.sets]
    assert contig.pages_covered == stock.occupancy


# --------------------------------------------------------------------- #
# Mosaic allocation vs fragmentation-free reference (ISSUE 10)
# --------------------------------------------------------------------- #
def run_mosaic_ops(touches, capacity_pages=64):
    """Touch the same VPN stream through a Mosaic UVM and a CONTIGUOUS
    reference.  Placement is the *only* thing allowed to differ: faults,
    evictions, and the resident set must match in lockstep, and mosaic
    frames must be injective and offset-preserving within regions."""
    from repro.translation.address import PAGE_2M, PAGE_4K, PageGeometry
    from repro.translation.uvm import AllocationPolicy, UVMManager

    geometry = PageGeometry(PAGE_4K)
    ppr = PAGE_2M // PAGE_4K
    cap = capacity_pages * PAGE_4K
    mosaic = UVMManager(
        geometry=geometry, policy=AllocationPolicy.MOSAIC,
        far_fault_latency=100.0, gpu_memory_bytes=cap,
    )
    reference = UVMManager(
        geometry=geometry, policy=AllocationPolicy.CONTIGUOUS,
        far_fault_latency=100.0, gpu_memory_bytes=cap,
    )
    placements = {}
    for vpn in touches:
        ppn_m, lat_m = mosaic.ensure_mapped(vpn)
        ppn_r, lat_r = reference.ensure_mapped(vpn)
        assert lat_m == lat_r, "fault behaviour diverged from reference"
        assert ppn_m % ppr == vpn % ppr, "mosaic broke region offsets"
        placements[vpn] = ppn_m
        assert mosaic.fault_count == reference.fault_count
        assert mosaic.eviction_count == reference.eviction_count
        assert mosaic.resident_pages == reference.resident_pages
    resident = {v for v in placements if mosaic.is_resident(v)}
    assert resident == {v for v in placements if reference.is_resident(v)}
    live = {v: mosaic.ensure_mapped(v)[0] for v in sorted(resident)}
    assert len(set(live.values())) == len(live), "mosaic frames collided"
    regions = {}
    for vpn, ppn in live.items():
        # all pages of one virtual region sit in one physical region
        assert regions.setdefault(vpn // ppr, ppn // ppr) == ppn // ppr
    report = mosaic.fragmentation_report()
    assert report.huge_pages_committed == len(set(regions.values()))
    assert 0.0 < report.utilization <= 1.0


def _random_touches(rng: random.Random, n: int = 400):
    # a few regions' worth of VPNs, with enough pressure to force
    # eviction churn (capacity 64 pages vs up to 3*512 VPNs)
    return [rng.randrange(0, 3 * 512) for _ in range(n)]


if HAVE_HYPOTHESIS:

    @given(st.lists(st.integers(min_value=0, max_value=3 * 512 - 1),
                    min_size=1, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_mosaic_matches_contiguous_reference(touches):
        run_mosaic_ops(touches)

else:  # pragma: no cover

    @pytest.mark.parametrize("seed", FALLBACK_SEEDS)
    def test_mosaic_matches_contiguous_reference(seed):
        run_mosaic_ops(_random_touches(random.Random(seed)))
