"""Unit tests for the ``repro bench`` harness (not the wall clocks).

Timing itself is covered by the opt-in perf gate; here we pin the parts
that must be exactly right regardless of machine speed: percentile
math, report schema round-trips, baseline comparison semantics, the
quick-flag mismatch guard, and a CLI smoke run over the cheapest
benches.
"""

import json

import pytest

from repro.bench import (
    BENCHES,
    BenchResult,
    compare_to_baseline,
    format_results,
    load_report,
    run_benches,
    write_report,
)
from repro.bench.harness import _percentile
from repro.cli import main as cli_main


class TestPercentile:
    def test_single_value(self):
        assert _percentile([42.0], 50.0) == 42.0
        assert _percentile([42.0], 95.0) == 42.0

    def test_median_of_odd_count(self):
        assert _percentile([1.0, 2.0, 9.0], 50.0) == 2.0

    def test_median_interpolates_even_count(self):
        assert _percentile([1.0, 3.0], 50.0) == 2.0

    def test_p95_interpolates(self):
        values = [float(i) for i in range(1, 21)]  # 1..20
        assert _percentile(values, 95.0) == pytest.approx(19.05)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        values.sort()
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 100.0) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            _percentile([], 50.0)


class TestBenchResult:
    def test_percentiles_and_throughput(self):
        r = BenchResult("x", "ops", ops=1000.0, wall=[0.2, 0.1, 0.4])
        assert r.wall_p50 == 0.2
        assert r.throughput == pytest.approx(5000.0)

    def test_to_dict_fields(self):
        r = BenchResult("x", "ops", ops=10.0, wall=[0.5])
        d = r.to_dict()
        assert d["trials"] == 1
        assert d["wall_p50_s"] == 0.5
        assert d["throughput_per_s"] == 20.0


class TestReportRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        results = [BenchResult("a", "ops", 10.0, [0.1, 0.2])]
        write_report(path, results, trials=2, quick=True, tag="test")
        payload = load_report(path)
        assert payload["tag"] == "test"
        assert payload["quick"] is True
        assert payload["benches"]["a"]["wall_p50_s"] == pytest.approx(0.15)

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError):
            load_report(str(path))

    def test_compare_to_baseline(self):
        baseline = {"benches": {"a": {"wall_p50_s": 0.4}}}
        results = [
            BenchResult("a", "ops", 10.0, [0.1]),
            BenchResult("new_bench", "ops", 10.0, [0.1]),
        ]
        speedups = compare_to_baseline(results, baseline)
        assert speedups == {"a": pytest.approx(4.0)}  # new bench skipped

    def test_format_results_marks_missing_baseline(self):
        results = [BenchResult("only_here", "ops", 10.0, [0.1])]
        table = format_results(results, speedups={})
        assert "—" in table


class TestRunBenches:
    def test_unknown_bench_rejected(self):
        with pytest.raises(ValueError):
            run_benches(names=["no_such_bench"], trials=1)

    def test_nonpositive_trials_rejected(self):
        with pytest.raises(ValueError):
            run_benches(trials=0)

    def test_quick_run_of_cheap_benches(self):
        results = run_benches(
            names=["resource_pool", "coalescer"], trials=1, quick=True
        )
        assert [r.name for r in results] == ["resource_pool", "coalescer"]
        assert all(r.ops > 0 and len(r.wall) == 1 for r in results)

    def test_registry_is_nonempty_and_named_consistently(self):
        assert "fig2_cell" in BENCHES
        for name, spec in BENCHES.items():
            assert spec.name == name


class TestBenchCLI:
    def test_smoke_writes_report(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_smoke.json")
        rc = cli_main([
            "bench", "--benches", "resource_pool", "--trials", "1",
            "--quick", "--out", out, "--tag", "smoke",
        ])
        assert rc == 0
        payload = load_report(out)
        assert payload["quick"] is True
        assert "resource_pool" in payload["benches"]
        assert "resource_pool" in capsys.readouterr().out

    def test_quick_flag_mismatch_refused(self, tmp_path, capsys):
        baseline = str(tmp_path / "BENCH_full.json")
        write_report(
            baseline,
            [BenchResult("resource_pool", "ops", 10.0, [0.1])],
            trials=1, quick=False, tag="full",
        )
        rc = cli_main([
            "bench", "--benches", "resource_pool", "--trials", "1",
            "--quick", "--baseline", baseline,
            "--out", str(tmp_path / "BENCH_q.json"),
        ])
        assert rc == 2
        assert "quick" in capsys.readouterr().err

    def test_missing_baseline_refused(self, tmp_path, capsys):
        rc = cli_main([
            "bench", "--benches", "resource_pool", "--trials", "1",
            "--quick", "--baseline", str(tmp_path / "nope.json"),
            "--out", str(tmp_path / "BENCH_q.json"),
        ])
        assert rc == 2
