"""Shared fixtures for the test suite.

Simulation tests default to the ``micro`` workload scale so the whole
suite stays fast; experiment-level shape tests live in benchmarks/.
"""

import os

import pytest

try:
    from hypothesis import HealthCheck, settings as _hyp_settings

    # CI runs property tests derandomized (fixed example stream) so a
    # red bench-smoke job is reproducible locally; select with
    # REPRO_HYPOTHESIS_PROFILE=ci
    _hyp_settings.register_profile(
        "ci",
        max_examples=30,
        deadline=None,
        derandomize=True,
        suppress_health_check=list(HealthCheck),
    )
    _profile = os.environ.get("REPRO_HYPOTHESIS_PROFILE")
    if _profile:
        _hyp_settings.load_profile(_profile)
except ImportError:  # pragma: no cover - hypothesis is present in CI
    pass

from repro import BASELINE_CONFIG
from repro.arch.kernel import Kernel, MemoryInstruction, TBTrace, WarpTrace
from repro.engine.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def baseline_config():
    return BASELINE_CONFIG


def build_kernel(
    num_tbs=4,
    warps_per_tb=2,
    instrs_per_warp=10,
    pages_per_warp=None,
    page_size=4096,
    compute_gap=4.0,
    name="synthetic",
    threads_per_tb=64,
):
    """Tiny deterministic kernel: warp w of TB t walks its own pages.

    ``pages_per_warp`` limits the number of distinct pages (cycling),
    which makes reuse behaviour easy to reason about in tests.
    """
    tbs = []
    for t in range(num_tbs):
        warps = []
        for w in range(warps_per_tb):
            base_page = (t * warps_per_tb + w) * 1000
            instrs = []
            for i in range(instrs_per_warp):
                page = base_page + (
                    i % pages_per_warp if pages_per_warp else i
                )
                instrs.append(
                    MemoryInstruction(compute_gap, (page * page_size,))
                )
            warps.append(WarpTrace(instrs))
        tbs.append(TBTrace(t, warps))
    return Kernel(name, threads_per_tb=threads_per_tb, tbs=tbs)


@pytest.fixture
def tiny_kernel():
    return build_kernel()
