"""Tests for workload-building utilities (AddressSpace, TraceBuilder)."""

import pytest

from repro.workloads import AddressSpace, TraceBuilder
from repro.workloads.base import REGION_ALIGN, make_kernel, pages_of, rng_for


class TestAddressSpace:
    def test_regions_are_disjoint_and_aligned(self):
        space = AddressSpace()
        a = space.alloc("a", 1000)
        b = space.alloc("b", 10_000_000)
        c = space.alloc("c", 1)
        assert a % REGION_ALIGN == 0
        assert b % REGION_ALIGN == 0
        assert a < b < c
        assert b - a >= REGION_ALIGN

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc("x", 10)
        with pytest.raises(ValueError):
            space.alloc("x", 10)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().alloc("x", 0)

    def test_footprint(self):
        space = AddressSpace()
        space.alloc("a", 100)
        space.alloc("b", 200)
        assert space.footprint_bytes() == 300


class TestTraceBuilder:
    def test_coalesced_access(self):
        b = TraceBuilder(1)
        b.strided(0, 0, 4)  # 32 threads x 4B = 1 transaction
        tb = b.build(0)
        assert tb.num_transactions == 1

    def test_broadcast(self):
        b = TraceBuilder(1)
        b.broadcast(0, 4096)
        tb = b.build(0)
        assert list(tb.addresses()) == [4096]

    def test_divergent_access_split_into_batches(self):
        b = TraceBuilder(1, max_tx_per_instr=8)
        b.access(0, (i * 4096 for i in range(32)))
        tb = b.build(0)
        assert tb.num_instructions == 4
        assert tb.num_transactions == 32
        gaps = [i.compute_gap for i in tb.warps[0].instructions]
        assert gaps[0] > 0 and all(g == 0 for g in gaps[1:])

    def test_no_batching_by_default(self):
        b = TraceBuilder(1)
        b.access(0, (i * 4096 for i in range(32)))
        assert b.build(0).num_instructions == 1

    def test_warp_stagger_applied_to_later_warps(self):
        b = TraceBuilder(2, compute_gap=5.0, warp_stagger=100.0)
        b.broadcast(0, 0)
        b.broadcast(1, 0)
        tb = b.build(0)
        assert tb.warps[0].instructions[0].compute_gap == 5.0
        assert tb.warps[1].instructions[0].compute_gap == 105.0

    def test_empty_warps_are_dropped(self):
        b = TraceBuilder(4)
        b.broadcast(2, 0)
        tb = b.build(0)
        assert tb.num_warps == 1

    def test_write_flag_propagates(self):
        b = TraceBuilder(1)
        b.broadcast(0, 0, write=True)
        assert b.build(0).warps[0].instructions[0].is_write

    def test_invalid_warp_count(self):
        with pytest.raises(ValueError):
            TraceBuilder(0)


class TestHelpers:
    def test_pages_of(self):
        assert pages_of([0, 100, 4096, 8191]) == {0, 1}

    def test_rng_deterministic_per_name(self):
        assert rng_for("bfs", 1).integers(1000) == rng_for("bfs", 1).integers(1000)
        r1 = rng_for("bfs", 1).integers(1 << 30)
        r2 = rng_for("mvt", 1).integers(1 << 30)
        assert r1 != r2  # different benchmarks decorrelate

    def test_make_kernel_metadata(self):
        b = TraceBuilder(1)
        b.broadcast(0, 0)
        kernel = make_kernel("k", [b.build(0)], threads_per_tb=64,
                             registers_per_thread=16, shared_mem_per_tb=1024)
        assert kernel.registers_per_thread == 16
        assert kernel.shared_mem_per_tb == 1024
