"""Perf-regression gate: current benches vs the recorded baseline.

Wall-clock assertions are inherently machine- and load-dependent, so
this module is **opt-in**: it only runs with ``REPRO_PERF_GATE=1`` set
(CI runs it as a separate non-blocking job; see ``bench-smoke`` in
``.github/workflows/ci.yml``).  The budget is deliberately generous —
3x the pre-optimization baseline p50 per bench — so it catches
catastrophic regressions (an accidentally quadratic loop, a dropped
fast path) without flaking on noisy shared runners.  Precise trajectory
tracking lives in the committed ``BENCH_*.json`` reports instead.
"""

import os

import pytest

from repro.bench import compare_to_baseline, load_report, run_benches

BASELINE = os.path.join(
    os.path.dirname(__file__), "..", "tools", "goldens", "bench_baseline.json"
)

#: generous multiple of the recorded baseline p50 a bench may take
BUDGET_FACTOR = 3.0

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_PERF_GATE") != "1",
    reason="wall-clock perf gate is opt-in (set REPRO_PERF_GATE=1)",
)


def test_benches_within_budget_of_baseline():
    baseline = load_report(BASELINE)
    # full-size benches (quick=False) — the baseline was recorded full-
    # size and the harness refuses cross-flag comparisons by design;
    # few trials keep the gate affordable
    results = run_benches(trials=3, quick=False)
    speedups = compare_to_baseline(results, baseline)
    assert speedups, "baseline report contains none of the current benches"
    over_budget = {
        name: f"{1.0 / speedup:.2f}x slower than baseline"
        for name, speedup in speedups.items()
        if speedup < 1.0 / BUDGET_FACTOR
    }
    assert not over_budget, (
        f"benches exceeded {BUDGET_FACTOR:.0f}x of the recorded baseline "
        f"p50: {over_budget}"
    )
