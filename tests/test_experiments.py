"""Smoke tests for the experiment harness (micro scale).

Shape assertions live in benchmarks/ at the calibrated ``small`` scale;
here we verify the machinery: caching, table formats, check plumbing.
"""

import pytest

from repro.experiments import fig2, fig3, fig4, fig5, fig6, fig10, fig11, fig12
from repro.experiments import large_pages
from repro.experiments.configs import CONFIGS, get_config
from repro.experiments.runner import ExperimentRunner, geomean
from repro.experiments.tables import format_table3, run_table2, table3_checks


@pytest.fixture(scope="module")
def runner():
    # Two cheap benchmarks keep the module fast while covering both a
    # graph and a matrix generator.
    return ExperimentRunner(scale="micro", benchmarks=("gemm", "nw"))


def test_configs_all_resolvable():
    for name in CONFIGS:
        assert get_config(name) is CONFIGS[name]
    with pytest.raises(ValueError):
        get_config("bogus")


def test_runner_caches_runs(runner):
    r1 = runner.run("gemm", "baseline")
    r2 = runner.run("gemm", "baseline")
    assert r1 is r2


def test_runner_distinguishes_configs(runner):
    r1 = runner.run("gemm", "baseline")
    r2 = runner.run("gemm", "l1_256")
    assert r1 is not r2


def test_geomean():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
    with pytest.raises(ValueError):
        geomean([0.0, 1.0])


def test_fig2_structure(runner):
    result = fig2.run(runner)
    assert set(result.hit_64) == {"gemm", "nw"}
    assert "64-entry" in result.format_table()
    assert result.shape_checks()


def test_fig3_fig4_bins_sum_to_one(runner):
    for mod in (fig3, fig4):
        result = mod.run(runner)
        for bins in result.bins.values():
            assert sum(bins.fractions) == pytest.approx(1.0)
        assert result.format_table()


def test_fig5_fig6_cdf(runner):
    f5 = fig5.run(runner)
    f6 = fig6.run(runner, f5)
    for b in ("gemm", "nw"):
        assert f5.histograms[b].total > 0
        assert f6.histograms[b].total > 0
    assert f6.format_table()


def test_fig10_fig11_fig12(runner):
    f10 = fig10.run(runner)
    assert set(f10.baseline) == {"gemm", "nw"}
    f11 = fig11.run(runner)
    for value in f11.partition.values():
        assert value > 0
    f12 = fig12.run(runner)
    for value in f12.speedup.values():
        assert value > 0
    assert f10.format_table() and f11.format_table() and f12.format_table()


def test_large_pages(runner):
    result = large_pages.run(runner)
    for b in ("gemm", "nw"):
        assert 0 < result.utilization[b] <= 1.0
    assert result.format_table()


def test_tables():
    t2 = run_table2("micro")
    assert len(t2.traced_footprint_gb) == 10
    assert "bfs" in t2.format_table()
    assert all(c.passed for c in table3_checks())
    assert "16 SMs" in format_table3()


def test_timeseries_experiment(runner):
    from repro.experiments import timeseries

    result = timeseries.run(runner)
    assert result.benchmark == runner.benchmarks[0]
    assert set(result.rates) == {"baseline", "partition_sharing"}
    for check in result.shape_checks():
        assert check.passed, check
    table = result.format_table()
    assert "miss rate" in table and "baseline" in table


def test_runner_telemetry_merges_cells(tmp_path):
    trace = str(tmp_path / "sweep.json")
    runner = ExperimentRunner(
        scale="micro", benchmarks=("nw",), trace_path=trace, sample_every=500
    )
    runner.run("nw", "baseline")
    runner.run("nw", "partition")
    runner.close()
    import json

    events = json.load(open(trace))["traceEvents"]
    assert {e["pid"] for e in events} == {0, 1}
    manifest = json.load(open(trace + ".manifest.json"))
    assert manifest["artifact_kind"] == "trace"
    assert manifest["cells_simulated"] == 2
    assert manifest["config_hashes"].keys() == {"baseline", "partition"}
    # part files were cleaned up after the merge
    assert not list(tmp_path.glob("*.part"))


def test_supervised_worker_writes_trace(tmp_path):
    """Telemetry survives the subprocess boundary: the worker writes the
    per-cell trace file and ships the timeseries through the pipe."""
    trace = str(tmp_path / "sup.json")
    runner = ExperimentRunner(
        scale="micro",
        benchmarks=("nw",),
        trace_path=trace,
        sample_every=500,
        supervised=True,
    )
    result = runner.run("nw", "baseline")
    assert result.timeseries is not None
    runner.close()
    import json

    payload = json.load(open(trace))
    assert payload["traceEvents"]
