"""Unit tests for the stride-compressed TLB (PACT'20 comparator)."""

from hypothesis import given, settings, strategies as st

from repro.translation.compression import CompressedTLB


def make(entries=64, assoc=4, max_ratio=8, **kw):
    return CompressedTLB(entries, assoc, 1.0, max_ratio=max_ratio, **kw)


def test_contiguous_fills_coalesce_into_one_entry():
    tlb = make()
    for v in range(8):
        tlb.insert(v, 100 + v)
    assert tlb.occupancy == 1
    assert tlb.pages_covered == 8
    for v in range(8):
        r = tlb.probe(v)
        assert r.hit and r.ppn == 100 + v


def test_range_never_exceeds_max_ratio():
    tlb = make(max_ratio=4)
    for v in range(8):
        tlb.insert(v, 100 + v)
    assert tlb.occupancy == 2  # two aligned ranges of 4


def test_ranges_do_not_cross_region_boundary():
    tlb = make(max_ratio=4)
    tlb.insert(3, 103)
    tlb.insert(4, 104)  # next region: cannot extend
    assert tlb.occupancy == 2


def test_non_contiguous_ppn_does_not_coalesce():
    tlb = make()
    tlb.insert(0, 100)
    tlb.insert(1, 555)  # inconsistent stride
    assert tlb.occupancy == 2
    assert tlb.probe(0).ppn == 100
    assert tlb.probe(1).ppn == 555


def test_backward_extension():
    tlb = make()
    tlb.insert(5, 105)
    tlb.insert(4, 104)
    assert tlb.occupancy == 1
    assert tlb.probe(4).hit and tlb.probe(5).hit


def test_remap_drops_stale_range():
    tlb = make()
    tlb.insert(0, 100)
    tlb.insert(1, 101)
    tlb.insert(1, 999)  # page 1 remapped: the stale range is dropped
    assert tlb.probe(1).ppn == 999
    # Page 0's mapping is never served stale: either gone or still correct.
    result = tlb.probe(0)
    assert not result.hit or result.ppn == 100


def test_invalidate_covers_whole_range():
    tlb = make()
    for v in range(4):
        tlb.insert(v, 100 + v)
    assert tlb.invalidate(2)
    assert not tlb.probe(0).hit  # whole range dropped
    assert not tlb.probe(2).hit


def test_decompression_latency_added():
    tlb = make()
    assert tlb.probe_latency(1) == 1.0 + 1.0
    assert tlb.probe_latency(2) == 2.0 + 1.0


def test_eviction_counts_and_bounds():
    tlb = make(entries=4, assoc=4, max_ratio=1)  # degenerate: no ranges
    for v in range(0, 50, 2):  # non-contiguous
        tlb.insert(v, v)
    assert tlb.occupancy <= 4


@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                max_size=200))
@settings(max_examples=50)
def test_property_translation_correctness_with_identity_map(vpns):
    """With contiguous VPN->PPN (delta 1000), any hit returns vpn+1000."""
    tlb = make(entries=32, assoc=4)
    for v in vpns:
        r = tlb.probe(v)
        if r.hit:
            assert r.ppn == v + 1000
        else:
            tlb.insert(v, v + 1000)


@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                max_size=200))
@settings(max_examples=50)
def test_property_hardware_entries_bounded(vpns):
    tlb = make(entries=16, assoc=4)
    for v in vpns:
        tlb.insert(v, v + 1000)
    assert tlb.occupancy <= 16
    # Compression reach can exceed entries but never ratio * entries.
    assert tlb.pages_covered <= 16 * tlb.max_ratio
