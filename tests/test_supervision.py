"""Tests for supervised cell workers: watchdog, retry/backoff, taxonomy."""

import pytest

from repro.arch.config import BASELINE_CONFIG
from repro.engine.errors import (
    CellTimeoutError,
    LivelockError,
    SimulationError,
    WorkerCrash,
    error_from_class,
)
from repro.engine.faults import FaultKind, FaultPlan
from repro.engine.supervision import (
    CellFailure,
    CellSpec,
    RetryPolicy,
    Supervisor,
    simulate_cell,
)
from repro.experiments.runner import ExperimentRunner

SPEC = CellSpec(
    benchmark="nw",
    config=BASELINE_CONFIG,
    config_tag="baseline",
    scale="micro",
)


def make_supervisor(**kwargs):
    """Supervisor with recorded (not slept) backoff delays."""
    slept = []
    sup = Supervisor(sleep=slept.append, **kwargs)
    return sup, slept


class TestRetryPolicy:
    def test_exponential_schedule(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=0.25,
                             backoff_factor=2.0)
        assert [policy.delay(a) for a in range(3)] == [0.25, 0.5, 1.0]

    def test_jitter_stretches_delay_proportionally(self):
        policy = RetryPolicy(backoff_base=0.25, jitter=0.5)
        assert policy.delay(0, u=0.0) == 0.25
        assert policy.delay(0, u=1.0) == pytest.approx(0.25 * 1.5)
        assert policy.delay(1, u=0.5) == pytest.approx(0.5 * 1.25)

    def test_zero_jitter_ignores_draw(self):
        policy = RetryPolicy(backoff_base=0.25, jitter=0.0)
        assert policy.delay(0, u=0.9) == 0.25


class TestJitterDraw:
    def test_pure_function_of_seed_and_identity(self):
        assert Supervisor.jitter_u(SPEC, 0) == Supervisor.jitter_u(SPEC, 0)

    def test_in_unit_interval(self):
        draws = [Supervisor.jitter_u(SPEC, a) for a in range(16)]
        assert all(0.0 <= u < 1.0 for u in draws)

    def test_varies_with_seed_cell_and_attempt(self):
        base = Supervisor.jitter_u(SPEC, 0)
        reseeded = CellSpec(benchmark="nw", config=BASELINE_CONFIG,
                            config_tag="baseline", scale="micro", seed=7)
        other_cell = CellSpec(benchmark="nw", config=BASELINE_CONFIG,
                              config_tag="sched", scale="micro")
        assert Supervisor.jitter_u(reseeded, 0) != base
        assert Supervisor.jitter_u(other_cell, 0) != base
        assert Supervisor.jitter_u(SPEC, 1) != base

    def test_jittered_retry_schedule_is_reproducible(self):
        plan = FaultPlan().add("nw", "baseline", FaultKind.CRASH, times=2)
        schedules = []
        for _ in range(2):
            sup, slept = make_supervisor(
                fault_plan=plan, retry=RetryPolicy(jitter=0.5)
            )
            sup.run_cell(SPEC)
            schedules.append(list(slept))
        assert schedules[0] == schedules[1]
        # jitter is actually applied: delays exceed the bare schedule
        assert schedules[0][0] > 0.25 and schedules[0][1] > 0.5


class TestErrorTaxonomy:
    def test_wire_round_trip(self):
        exc = error_from_class("livelock", "msg")
        assert isinstance(exc, LivelockError)
        assert exc.exit_code == 5
        assert error_from_class("unknown-tag", "msg").error_class == "simulation"

    def test_distinct_exit_codes(self):
        codes = [
            error_from_class(tag, "m").exit_code
            for tag in ("simulation", "config", "workload", "livelock",
                        "timeout", "worker_crash", "checkpoint")
        ]
        assert len(set(codes)) == len(codes)
        assert all(c != 0 for c in codes)

    def test_failure_marker(self):
        assert CellFailure("livelock", "m").marker == "FAILED(livelock)"


class TestSimulateCell:
    def test_runs_in_process(self):
        result = simulate_cell(SPEC)
        assert result.tbs_completed > 0
        assert result.ok


class TestSupervisor:
    def test_supervised_matches_in_process(self):
        sup, _ = make_supervisor()
        supervised = sup.run_cell(SPEC)
        direct = simulate_cell(SPEC)
        assert supervised["cycles"] == direct.cycles
        assert supervised["l1_tlb_hits"] == direct.l1_tlb_hits

    def test_crash_retried_then_succeeds(self):
        plan = FaultPlan().add("nw", "baseline", FaultKind.CRASH, times=2)
        sup, slept = make_supervisor(fault_plan=plan)
        result = sup.run_cell(SPEC)
        assert result["tbs_completed"] > 0
        # two transient failures -> two backoff sleeps, exponential
        assert slept == [0.25, 0.5]

    def test_crash_exhausts_attempts(self):
        plan = FaultPlan().add("nw", "baseline", FaultKind.CRASH)
        sup, slept = make_supervisor(fault_plan=plan)
        with pytest.raises(WorkerCrash) as info:
            sup.run_cell(SPEC)
        assert info.value.attempts == 3
        assert slept == [0.25, 0.5]  # no sleep after the terminal attempt

    def test_livelock_fails_fast(self):
        plan = FaultPlan().add("nw", "baseline", FaultKind.LIVELOCK)
        sup, slept = make_supervisor(fault_plan=plan)
        with pytest.raises(LivelockError) as info:
            sup.run_cell(SPEC)
        assert info.value.attempts == 1  # deterministic: not retried
        assert slept == []

    def test_generic_error_fails_fast(self):
        plan = FaultPlan().add("nw", "baseline", FaultKind.ERROR)
        sup, _ = make_supervisor(fault_plan=plan)
        with pytest.raises(SimulationError) as info:
            sup.run_cell(SPEC)
        assert info.value.error_class == "simulation"
        assert info.value.attempts == 1

    def test_watchdog_kills_hung_worker(self):
        plan = FaultPlan().add("nw", "baseline", FaultKind.TIMEOUT)
        sup, slept = make_supervisor(
            timeout=0.2,
            retry=RetryPolicy(max_attempts=2),
            fault_plan=plan,
        )
        with pytest.raises(CellTimeoutError) as info:
            sup.run_cell(SPEC)
        assert info.value.attempts == 2  # timeouts are transient: retried once
        assert slept == [0.25]
        assert "wall-clock" in str(info.value)


class TestSupervisedRunner:
    def test_fault_plan_implies_supervision(self):
        runner = ExperimentRunner(
            scale="micro",
            fault_plan=FaultPlan().add("nw", "baseline", FaultKind.ERROR),
        )
        assert runner.supervised
        assert ExperimentRunner(scale="micro", timeout=30.0).supervised
        assert not ExperimentRunner(scale="micro").supervised

    def test_strict_runner_raises(self):
        runner = ExperimentRunner(
            scale="micro", benchmarks=("nw",),
            fault_plan=FaultPlan().add("nw", "baseline", FaultKind.LIVELOCK),
            strict=True,
        )
        with pytest.raises(LivelockError):
            runner.run("nw", "baseline")

    def test_degraded_runner_returns_placeholder(self):
        runner = ExperimentRunner(
            scale="micro", benchmarks=("nw",),
            fault_plan=FaultPlan().add("nw", "baseline", FaultKind.LIVELOCK),
            strict=False,
        )
        result = runner.run("nw", "baseline")
        assert not result.ok
        assert result.failure == "livelock"
        # failure is cached: the cell is not attempted again
        assert runner.run("nw", "baseline") is result
        failure = runner.failure_for("nw", "baseline")
        assert failure is not None and failure.marker == "FAILED(livelock)"
        assert any("livelock" in line for line in runner.failure_summary())

    def test_unaffected_cells_still_succeed(self):
        runner = ExperimentRunner(
            scale="micro", benchmarks=("nw",),
            fault_plan=FaultPlan().add("nw", "baseline", FaultKind.LIVELOCK),
            strict=False,
        )
        assert not runner.run("nw", "baseline").ok
        assert runner.run("nw", "sched").ok
