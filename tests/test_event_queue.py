"""Unit tests for the discrete-event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.event_queue import EventQueue


def test_events_run_in_time_order():
    q = EventQueue()
    order = []
    q.schedule(5.0, lambda: order.append("b"))
    q.schedule(1.0, lambda: order.append("a"))
    q.schedule(9.0, lambda: order.append("c"))
    while q.pop_and_run():
        pass
    assert order == ["a", "b", "c"]


def test_same_time_events_run_fifo():
    q = EventQueue()
    order = []
    for i in range(10):
        q.schedule(3.0, lambda i=i: order.append(i))
    while q.pop_and_run():
        pass
    assert order == list(range(10))


def test_priority_breaks_ties():
    q = EventQueue()
    order = []
    q.schedule(1.0, lambda: order.append("late"), priority=1)
    q.schedule(1.0, lambda: order.append("early"), priority=-1)
    while q.pop_and_run():
        pass
    assert order == ["early", "late"]


def test_now_advances_with_events():
    q = EventQueue()
    seen = []
    q.schedule(2.0, lambda: seen.append(q.now))
    q.schedule(7.0, lambda: seen.append(q.now))
    while q.pop_and_run():
        pass
    assert seen == [2.0, 7.0]
    assert q.now == 7.0


def test_cannot_schedule_in_the_past():
    q = EventQueue()
    q.schedule(5.0, lambda: None)
    q.pop_and_run()
    with pytest.raises(ValueError):
        q.schedule(4.0, lambda: None)


def test_schedule_after_uses_relative_delay():
    q = EventQueue()
    times = []
    q.schedule(10.0, lambda: q.schedule_after(5.0, lambda: times.append(q.now)))
    while q.pop_and_run():
        pass
    assert times == [15.0]


def test_schedule_after_rejects_negative_delay():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.schedule_after(-1.0, lambda: None)


def test_cancelled_event_does_not_run():
    q = EventQueue()
    ran = []
    handle = q.schedule(1.0, lambda: ran.append(1))
    handle.cancel()
    assert handle.cancelled
    while q.pop_and_run():
        pass
    assert ran == []


def test_len_excludes_cancelled():
    q = EventQueue()
    h1 = q.schedule(1.0, lambda: None)
    q.schedule(2.0, lambda: None)
    assert len(q) == 2
    h1.cancel()
    assert len(q) == 1


def test_events_scheduled_during_execution_run():
    q = EventQueue()
    order = []
    q.schedule(1.0, lambda: (order.append("first"),
                             q.schedule(1.0, lambda: order.append("nested"))))
    while q.pop_and_run():
        pass
    assert order == ["first", "nested"]


def test_pop_on_empty_returns_false():
    assert EventQueue().pop_and_run() is False


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
def test_property_pop_order_is_sorted(times):
    q = EventQueue()
    popped = []
    for t in times:
        q.schedule(t, lambda t=t: popped.append(t))
    while q.pop_and_run():
        pass
    assert popped == sorted(times)
    assert len(popped) == len(times)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
        min_size=1,
        max_size=100,
    )
)
def test_property_cancellation_removes_exactly_cancelled(events):
    q = EventQueue()
    ran = []
    handles = []
    for i, (t, cancel) in enumerate(events):
        handles.append((q.schedule(t, lambda i=i: ran.append(i)), cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    while q.pop_and_run():
        pass
    expected = {i for i, (_t, cancel) in enumerate(events) if not cancel}
    assert set(ran) == expected
