"""Tests for the deterministic fault-injection harness."""

import json

import pytest

from repro.engine.faults import (
    ANY_CONFIG,
    FAULT_ENV_VAR,
    FaultKind,
    FaultPlan,
    FaultSpec,
    corrupt_file,
)


class TestFaultSpec:
    def test_always_applies_by_default(self):
        spec = FaultSpec(FaultKind.CRASH)
        assert all(spec.applies(a) for a in range(10))

    def test_times_limits_to_first_attempts(self):
        spec = FaultSpec(FaultKind.TIMEOUT, times=2)
        assert spec.applies(0)
        assert spec.applies(1)
        assert not spec.applies(2)


class TestFaultPlan:
    def test_lookup_exact_and_wildcard(self):
        plan = FaultPlan()
        plan.add("bfs", "baseline", FaultKind.LIVELOCK)
        plan.add("nw", ANY_CONFIG, FaultKind.CRASH)
        assert plan.lookup("bfs", "baseline", 0).kind is FaultKind.LIVELOCK
        assert plan.lookup("bfs", "sched", 0) is None
        assert plan.lookup("nw", "anything", 0).kind is FaultKind.CRASH
        assert plan.lookup("gemm", "baseline", 0) is None

    def test_lookup_respects_attempt_schedule(self):
        plan = FaultPlan().add("bfs", "baseline", FaultKind.CRASH, times=1)
        assert plan.lookup("bfs", "baseline", 0) is not None
        assert plan.lookup("bfs", "baseline", 1) is None

    def test_bool(self):
        assert not FaultPlan()
        assert FaultPlan().add("bfs", "*", FaultKind.ERROR)

    def test_env_round_trip(self):
        plan = FaultPlan()
        plan.add("bfs", "baseline", FaultKind.LIVELOCK)
        plan.add("nw", ANY_CONFIG, FaultKind.CRASH, times=2)
        text = plan.to_env()
        back = FaultPlan.parse(text)
        assert back.specs == plan.specs

    def test_parse_formats(self):
        plan = FaultPlan.parse("bfs:baseline:livelock;nw:*:crash:2")
        assert plan.specs[("bfs", "baseline")] == FaultSpec(FaultKind.LIVELOCK)
        assert plan.specs[("nw", "*")] == FaultSpec(FaultKind.CRASH, times=2)

    def test_parse_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="expected"):
            FaultPlan.parse("bfs:baseline")

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("bfs:baseline:meltdown")

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        plan = FaultPlan.from_env({FAULT_ENV_VAR: "bfs:baseline:timeout"})
        assert plan.lookup("bfs", "baseline", 0).kind is FaultKind.TIMEOUT


class TestCorruptFile:
    def test_flips_one_byte(self, tmp_path):
        path = tmp_path / "victim.jsonl"
        payload = json.dumps({"key": "value"})
        path.write_text(payload)
        corrupt_file(str(path))
        corrupted = path.read_bytes()
        assert corrupted != payload.encode()
        assert len(corrupted) == len(payload)
        diffs = sum(
            1 for a, b in zip(corrupted, payload.encode()) if a != b
        )
        assert diffs == 1

    def test_offset_targets_byte(self, tmp_path):
        path = tmp_path / "victim.bin"
        path.write_bytes(b"abcd")
        corrupt_file(str(path), offset=0)
        assert path.read_bytes()[1:] == b"bcd"
        assert path.read_bytes()[0] != ord("a")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            corrupt_file(str(path))


class TestDiskSpecsInPlan:
    def test_parse_mixed_process_and_disk(self):
        from repro.engine.storage import DiskFaultKind

        plan = FaultPlan.parse(
            "bfs:baseline:livelock;disk:journal:enospc;disk:results:torn:3"
        )
        assert plan.specs[("bfs", "baseline")].kind is FaultKind.LIVELOCK
        assert [(s.layer, s.kind, s.nth) for s in plan.disk] == [
            ("journal", DiskFaultKind.ENOSPC, 1),
            ("results", DiskFaultKind.TORN, 3),
        ]

    def test_round_trip_preserves_disk_specs(self):
        plan = FaultPlan.parse("disk:*:fsync:2;nw:*:crash")
        back = FaultPlan.parse(plan.to_env())
        assert back.specs == plan.specs
        assert back.disk == plan.disk

    def test_disk_only_plan_is_truthy(self):
        assert FaultPlan.parse("disk:journal:eio")

    def test_bad_disk_spec_rejected(self):
        with pytest.raises(ValueError, match="disk fault"):
            FaultPlan.parse("disk:journal:meltdown")
        with pytest.raises(ValueError, match="expected"):
            FaultPlan.parse("disk:journal")
