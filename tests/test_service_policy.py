"""Scheduling-policy unit tests: priority, EDF, preemption rules."""

from repro.service.policy import PolicyConfig, SchedulingPolicy
from repro.service.state import RUNNING, Job, QueueState


def make_state(*jobs):
    state = QueueState()
    for seq, job in enumerate(jobs, start=2):
        state.apply(
            {"seq": seq, "type": "submit", "payload": {"job": job.to_payload()}}
        )
    return state


def job(job_id, priority=0, deadline=0.0):
    return Job(
        job_id=job_id,
        benchmark=job_id.split(":")[0],
        config_name=job_id.split(":")[1],
        priority=priority,
        deadline_unix=deadline,
    )


def test_fifo_within_equal_priority_and_no_deadline():
    state = make_state(job("a:x"), job("b:x"), job("c:x"))
    policy = SchedulingPolicy()
    assert [j.job_id for j in policy.runnable(state, 0.0)] == [
        "a:x", "b:x", "c:x",
    ]


def test_priority_dominates_submission_order():
    state = make_state(job("a:x"), job("b:x", priority=5), job("c:x", priority=1))
    policy = SchedulingPolicy()
    assert [j.job_id for j in policy.runnable(state, 0.0)] == [
        "b:x", "c:x", "a:x",
    ]
    assert policy.pick_next(state, 0.0).job_id == "b:x"


def test_edf_within_a_priority_band():
    state = make_state(
        job("a:x", deadline=300.0),
        job("b:x", deadline=100.0),
        job("c:x"),  # no deadline sorts after every real deadline
    )
    policy = SchedulingPolicy()
    assert [j.job_id for j in policy.runnable(state, 0.0)] == [
        "b:x", "a:x", "c:x",
    ]


def test_expired_jobs_are_excluded_and_reported():
    state = make_state(job("a:x", deadline=10.0), job("b:x"))
    policy = SchedulingPolicy()
    assert [j.job_id for j in policy.expired(state, now_unix=11.0)] == ["a:x"]
    assert [j.job_id for j in policy.runnable(state, 11.0)] == ["b:x"]


def test_preemption_requires_strictly_higher_priority():
    running = job("r:x", priority=3)
    running.state = RUNNING
    policy = SchedulingPolicy()
    equal = make_state(job("a:x", priority=3))
    assert policy.should_preempt(equal, running, 0.0) is None
    lower = make_state(job("a:x", priority=1))
    assert policy.should_preempt(lower, running, 0.0) is None
    higher = make_state(job("a:x", priority=4))
    winner = policy.should_preempt(higher, running, 0.0)
    assert winner is not None and winner.job_id == "a:x"


def test_preemption_respects_min_hold_and_off_switch():
    running = job("r:x", priority=0)
    running.state = RUNNING
    state = make_state(job("a:x", priority=9))
    held = SchedulingPolicy(PolicyConfig(min_run_before_preempt=5.0))
    assert held.should_preempt(state, running, 0.0, held_for=1.0) is None
    assert held.should_preempt(state, running, 0.0, held_for=6.0) is not None
    off = SchedulingPolicy(PolicyConfig(preemption=False))
    assert off.should_preempt(state, running, 0.0, held_for=99.0) is None


def test_expired_never_preempts():
    running = job("r:x", priority=0)
    running.state = RUNNING
    # the only pending job is higher priority but already expired
    state = make_state(job("a:x", priority=9, deadline=10.0))
    policy = SchedulingPolicy()
    assert policy.should_preempt(state, running, now_unix=20.0) is None
