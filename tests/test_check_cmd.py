"""Tests for ``repro check``: self-check suites and the golden gate."""

import json
import os

import pytest

from repro.cli import main
from repro.sanitizer.goldens import (
    GOLDEN_METRICS,
    compare_goldens,
    default_golden_path,
    load_goldens,
    write_goldens,
)
from repro.sanitizer.selfcheck import SUITES, run_suites

MICRO = "micro"


def make_cells():
    return {
        "bfs:baseline": {metric: 100.0 for metric in GOLDEN_METRICS},
        "bfs:sched": {metric: 90.0 for metric in GOLDEN_METRICS},
    }


class TestGoldenCompare:
    def write(self, tmp_path, cells):
        path = str(tmp_path / "goldens.json")
        write_goldens(path, MICRO, 0, cells)
        return path

    def test_round_trip_matches(self, tmp_path):
        cells = make_cells()
        payload = load_goldens(self.write(tmp_path, cells))
        assert compare_goldens(cells, payload) == []

    def test_metric_drift_detected(self, tmp_path):
        cells = make_cells()
        payload = load_goldens(self.write(tmp_path, cells))
        cells["bfs:baseline"]["cycles"] = 101.0
        problems = compare_goldens(cells, payload)
        assert len(problems) == 1
        assert "bfs:baseline.cycles" in problems[0]

    def test_tolerance_absorbs_tiny_drift(self, tmp_path):
        cells = make_cells()
        path = self.write(tmp_path, cells)
        payload = load_goldens(path)
        payload["tolerance"] = 0.05
        cells["bfs:baseline"]["cycles"] = 104.0  # 4% < 5%
        assert compare_goldens(cells, payload) == []
        cells["bfs:baseline"]["cycles"] = 110.0  # 10% > 5%
        assert compare_goldens(cells, payload) != []

    def test_missing_and_extra_cells_detected(self, tmp_path):
        cells = make_cells()
        payload = load_goldens(self.write(tmp_path, cells))
        del cells["bfs:sched"]
        cells["bfs:partition"] = {m: 1.0 for m in GOLDEN_METRICS}
        problems = "\n".join(compare_goldens(cells, payload))
        assert "bfs:sched" in problems
        assert "bfs:partition" in problems

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "not_goldens.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="kind"):
            load_goldens(str(path))


class TestSuites:
    def test_registry_covers_issue_suites(self):
        assert {"tlb-sharing", "telemetry", "sanitizer", "resume"} <= set(
            SUITES
        )

    def test_component_suite_passes(self):
        (outcome,) = run_suites(["tlb-sharing"], MICRO, 0)
        assert outcome.passed, outcome.detail

    def test_crashing_suite_reported_not_raised(self, monkeypatch):
        def boom(scale, seed):
            raise RuntimeError("kaput")

        monkeypatch.setitem(SUITES, "tlb-sharing", boom)
        (outcome,) = run_suites(["tlb-sharing"], MICRO, 0)
        assert not outcome.passed
        assert "kaput" in outcome.detail


class TestCheckCommand:
    def test_repo_goldens_exist_for_micro(self):
        """The shipped golden file is part of the regression gate."""
        path = default_golden_path(MICRO)
        assert os.path.exists(path), f"missing shipped goldens at {path}"
        payload = load_goldens(path)
        assert payload["scale"] == MICRO

    def test_golden_gate_passes_against_repo_goldens(self, capsys):
        code = main(["check", "--scale", MICRO, "--goldens-only"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "goldens" in out

    def test_suites_via_cli(self, capsys):
        code = main(
            ["check", "--scale", MICRO, "--suites", "tlb-sharing",
             "--skip-goldens"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "[PASS] tlb-sharing" in out

    def test_missing_golden_file_fails_with_hint(self, tmp_path, capsys):
        code = main(
            ["check", "--scale", MICRO, "--goldens-only",
             "--goldens", str(tmp_path / "absent.json")]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "--update-goldens" in captured.out

    def test_update_then_gate_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "fresh.json")
        assert main(
            ["check", "--scale", MICRO, "--update-goldens",
             "--skip-goldens", "--suites", "tlb-sharing",
             "--goldens", path]
        ) == 0
        assert os.path.exists(path)
        capsys.readouterr()
        code = main(
            ["check", "--scale", MICRO, "--goldens-only", "--goldens", path]
        )
        assert code == 0, capsys.readouterr().out

    def test_drifted_golden_fails_gate(self, tmp_path, capsys):
        original = load_goldens(default_golden_path(MICRO))
        original["cells"]["bfs:baseline"]["cycles"] += 1
        path = str(tmp_path / "drifted.json")
        with open(path, "w") as handle:
            json.dump(original, handle)
        code = main(
            ["check", "--scale", MICRO, "--goldens-only", "--goldens", path]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "cycles" in captured.out
