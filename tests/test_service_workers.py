"""Worker-fleet tests: registration, failure detection, fenced leases,
net-fault chaos, LRU result cache, and deadline-capped client backoff.

The fleet unit tests drive :class:`WorkerFleet` in-process with
injected clocks (deterministic failure detection); the end-to-end test
runs a real coordinator daemon, partitions a worker with the ``net:``
shim, and proves the fencing invariant over real sockets: the
reclaimed-then-revived worker's commit is rejected, the reassigned
run's result is served, and the WAL replays to an identical snapshot.
"""

import os
import socket
import threading
import time

import pytest

from repro.engine.errors import (
    ConfigError,
    DeadlineError,
    JournalError,
    ProtocolError,
)
from repro.engine.faults import FaultKind, FaultPlan
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    RUNNING,
    SUBMITTED,
    WORKER_ALIVE,
    WORKER_DEAD,
    WORKER_LEFT,
    WORKER_SUSPECT,
    DaemonClient,
    DaemonUnavailable,
    Job,
    NetFaultKind,
    NetFaults,
    NetFaultSpec,
    QueueState,
    ResultCache,
    SweepDaemon,
    SweepService,
    parse_net_spec,
    set_net_faults,
)
from repro.service.protocol import encode_frame


@pytest.fixture(autouse=True)
def _clean_net_faults(monkeypatch):
    """Every test starts and ends with a pristine net-fault shim."""
    monkeypatch.delenv("REPRO_FAULT", raising=False)
    set_net_faults(None)
    yield
    set_net_faults(None)


def make_pool(tmp_path, **kwargs):
    kwargs.setdefault("scale", "micro")
    kwargs.setdefault("seed", 0)
    pool = SweepService(str(tmp_path / "svc"), **kwargs)
    pool.recover()
    return pool


# --------------------------------------------------------------------- #
# net:<side>[.<op>]:<kind>[:<nth>|:*] grammar
# --------------------------------------------------------------------- #


def test_parse_net_spec_forms_and_roundtrip():
    spec = parse_net_spec("net:client:drop")
    assert (spec.side, spec.kind, spec.nth, spec.op) == (
        "client", NetFaultKind.DROP, 1, ""
    )
    spec = parse_net_spec("net:worker.heartbeat:drop:*")
    assert (spec.side, spec.kind, spec.nth, spec.op) == (
        "worker", NetFaultKind.DROP, 0, "heartbeat"
    )
    spec = parse_net_spec("net:server.submit:delay:3")
    assert (spec.side, spec.kind, spec.nth, spec.op) == (
        "server", NetFaultKind.DELAY, 3, "submit"
    )
    for text in (
        "net:client:drop",
        "net:worker.heartbeat:drop:*",
        "net:server.submit:delay:3",
        "net:server:reorder",
        "net:client:reset:2",
    ):
        assert parse_net_spec(text).to_part() == text


def test_parse_net_spec_rejects_garbage():
    for text in (
        "net:client",                 # missing kind
        "net:client:drop:1:extra",    # too many fields
        "net:mars:drop",              # unknown side
        "net:client:teleport",        # unknown kind
        "net:client:reorder",         # reorder is server-only
        "net:worker:reorder:*",       # reorder is server-only
        "net:client:drop:0",          # nth must be >= 1 or '*'
        "net:client:drop:soon",       # nth not an int
    ):
        with pytest.raises(ConfigError):
            parse_net_spec(text)


def test_fault_plan_carries_net_specs_and_roundtrips():
    plan = FaultPlan.parse(
        "nw:baseline:crash:2;net:worker.heartbeat:drop:*;net:server:reorder"
    )
    assert len(plan.net) == 2
    assert plan.net[0].op == "heartbeat"
    assert bool(plan)
    again = FaultPlan.parse(plan.to_env())
    assert again.net == plan.net
    assert again.specs == plan.specs
    with pytest.raises(ConfigError):
        FaultPlan.parse("bfs:baseline:crash;net:client:reorder")


def test_fault_plan_stall_reinterprets_times_as_seconds():
    plan = FaultPlan.parse("bfs:baseline:stall:9")
    spec = plan.lookup("bfs", "baseline", attempt=0)
    assert spec.kind is FaultKind.STALL
    assert spec.stall_seconds == 9.0
    # a stall applies on every attempt: it models slow, not broken
    assert plan.lookup("bfs", "baseline", attempt=7) is spec


def test_net_faults_single_shot_and_sustained():
    net = NetFaults([
        NetFaultSpec("client", NetFaultKind.DROP, 2),
        NetFaultSpec("server", NetFaultKind.RESET, 0),
    ])
    assert net.decide("client", "ping") is None
    fired = net.decide("client", "ping")
    assert fired is not None and fired.kind is NetFaultKind.DROP
    # single-shot: the third matching frame passes clean
    assert net.decide("client", "ping") is None
    # '*' never retires: every server frame is attacked
    for _ in range(3):
        assert net.decide("server", "status").kind is NetFaultKind.RESET
    assert len(net.decisions) == 4


def test_net_faults_op_scope_counts_only_matching_frames():
    net = NetFaults([
        NetFaultSpec("worker", NetFaultKind.DROP, 2, "heartbeat"),
    ])
    assert net.decide("worker", "lease") is None
    assert net.decide("worker", "heartbeat") is None   # heartbeat #1
    assert net.decide("worker", "commit") is None
    fired = net.decide("worker", "heartbeat")          # heartbeat #2
    assert fired is not None and fired.op == "heartbeat"


def test_net_faults_env_refresh_resets_counts(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT", "net:client:drop")
    net = NetFaults()
    assert net.decide("client", "ping").kind is NetFaultKind.DROP
    assert net.decide("client", "ping") is None
    # a new plan is a new experiment: frame counts start over
    monkeypatch.setenv("REPRO_FAULT", "net:client:drop:2")
    assert net.decide("client", "ping") is None
    assert net.decide("client", "ping").kind is NetFaultKind.DROP


# --------------------------------------------------------------------- #
# Client: rq stamping, stale-response discard, deadline-capped backoff
# --------------------------------------------------------------------- #


def test_client_discards_stale_rq_responses(tmp_path):
    client = DaemonClient(str(tmp_path), timeout=2.0)
    ours, theirs = socket.socketpair()
    try:
        client._sock = ours
        theirs.sendall(encode_frame({"ok": True, "rq": 1, "tag": "stale"}))
        theirs.sendall(encode_frame({"ok": True, "rq": 2, "tag": "fresh"}))
        assert client._recv_matching(2)["tag"] == "fresh"
    finally:
        ours.close()
        theirs.close()


def test_client_rejects_response_from_the_future(tmp_path):
    client = DaemonClient(str(tmp_path), timeout=2.0)
    ours, theirs = socket.socketpair()
    try:
        client._sock = ours
        theirs.sendall(encode_frame({"ok": True, "rq": 9}))
        with pytest.raises(ProtocolError):
            client._recv_matching(2)
    finally:
        ours.close()
        theirs.close()


def test_client_backoff_is_capped_by_the_deadline(tmp_path):
    sleeps = []
    client = DaemonClient(
        str(tmp_path), timeout=0.2, max_attempts=4,
        backoff_base=5.0, sleep=sleeps.append,
    )
    # nothing listens on the socket: every attempt fails instantly
    with pytest.raises((DaemonUnavailable, DeadlineError)):
        client.request({"op": "ping"}, deadline=0.5)
    assert sleeps, "connection refusals must be retried"
    # uncapped, the first standoff alone would be >= backoff_base
    assert client.backoff(0) > 0.5
    assert all(standoff <= 0.5 for standoff in sleeps)


def test_client_exhausted_deadline_raises_without_sleeping(tmp_path):
    sleeps = []
    client = DaemonClient(
        str(tmp_path), timeout=0.2, max_attempts=5, sleep=sleeps.append,
    )
    with pytest.raises(DeadlineError):
        client.request({"op": "ping"}, deadline=0.0)
    assert sleeps == []


# --------------------------------------------------------------------- #
# Result cache: LRU eviction at a byte budget; fenced writes
# --------------------------------------------------------------------- #


def test_result_cache_evicts_least_recently_used(tmp_path):
    cache = ResultCache(str(tmp_path / "results"), max_bytes=1 << 20)
    k1, k2, k3 = "a" * 64, "b" * 64, "c" * 64
    cache.put(k1, {"cycles": 1.0})
    cache.put(k2, {"cycles": 2.0})
    size = os.path.getsize(cache.path_for(k1))
    # pin recency deterministically: k2 is the LRU entry
    os.utime(cache.path_for(k1), (1000, 1000))
    os.utime(cache.path_for(k2), (500, 500))
    cache.max_bytes = 2 * size + 8  # room for exactly two entries
    cache.put(k3, {"cycles": 3.0})
    assert cache.get(k2) is None
    assert cache.get(k1)["result"] == {"cycles": 1.0}
    assert cache.get(k3)["result"] == {"cycles": 3.0}
    assert cache.evictions == 1
    assert cache.stats()["evictions"] == 1
    assert len(cache) == 2


def test_result_cache_never_evicts_the_entry_just_written(tmp_path):
    cache = ResultCache(str(tmp_path / "results"), max_bytes=1)
    key = "k" * 64
    cache.put(key, {"cycles": 1.0})
    # the budget cannot hold it, but evicting the result we were asked
    # to store would turn the cache into a lie
    assert cache.get(key)["result"] == {"cycles": 1.0}
    assert cache.evictions == 0


def test_result_cache_reads_refresh_recency(tmp_path):
    cache = ResultCache(str(tmp_path / "results"), max_bytes=1 << 20)
    k1, k2, k3 = "a" * 64, "b" * 64, "c" * 64
    cache.put(k1, {"cycles": 1.0})
    cache.put(k2, {"cycles": 2.0})
    size = os.path.getsize(cache.path_for(k1))
    os.utime(cache.path_for(k1), (500, 500))
    os.utime(cache.path_for(k2), (1000, 1000))
    cache.get(k1)  # touch: k1 is now the most recently used
    cache.max_bytes = 2 * size + 8
    cache.put(k3, {"cycles": 3.0})
    assert cache.get(k1) is not None
    assert cache.get(k2) is None


def test_result_cache_fences_stale_generation_writes(tmp_path):
    cache = ResultCache(str(tmp_path / "results"))
    key = "k" * 64
    cache.put(key, {"cycles": 1.0}, fence=3, fence_expected=5)
    assert cache.get(key) is None
    assert cache.stores == 0
    assert cache.fenced_writes == 1
    # a current-generation write with matching tokens lands normally
    cache.put(key, {"cycles": 1.0}, fence=5, fence_expected=5)
    assert cache.get(key)["result"] == {"cycles": 1.0}


# --------------------------------------------------------------------- #
# Fleet: registration, capabilities, failure detection
# --------------------------------------------------------------------- #


def test_register_validates_capabilities(tmp_path):
    pool = make_pool(tmp_path)
    with pytest.raises(ProtocolError):
        pool.fleet.register({"benchmarks": "bfs"})
    with pytest.raises(ProtocolError):
        pool.fleet.register({"benchmarks": [""]})
    with pytest.raises(ProtocolError):
        pool.fleet.register({"parallelism": 0})
    grant = pool.fleet.register(None)
    assert grant["worker_id"].startswith("w")
    assert grant["heartbeat_every"] > 0
    assert grant["dead_after"] == pool.fleet.dead_after


def test_worker_ids_are_monotonic_and_never_reused(tmp_path):
    pool = make_pool(tmp_path)
    first = pool.fleet.register({})["worker_id"]
    second = pool.fleet.register({})["worker_id"]
    assert int(second[1:]) > int(first[1:])
    pool.fleet.deregister(first)
    third = pool.fleet.register({})["worker_id"]
    assert third not in (first, second)
    assert pool.state.workers[first].state == WORKER_LEFT


def test_lease_respects_worker_capabilities(tmp_path):
    pool = make_pool(tmp_path)
    pool.submit("bfs", "baseline")
    narrow = pool.fleet.register({"benchmarks": ["atax"]})["worker_id"]
    assert pool.fleet.lease(narrow) == {"known": True, "job": None}
    able = pool.fleet.register({"benchmarks": ["atax", "bfs"]})["worker_id"]
    lease = pool.fleet.lease(able)
    assert lease["job"]["benchmark"] == "bfs"
    assert lease["job"]["fence"] > 0
    job = pool.state.jobs[lease["job"]["job_id"]]
    assert job.state == RUNNING
    assert job.owner == able
    assert job.fence == lease["job"]["fence"]


def test_lease_from_unknown_worker_demands_reregistration(tmp_path):
    pool = make_pool(tmp_path)
    assert pool.fleet.lease("w999") == {"known": False, "reregister": True}


def test_failure_detector_suspects_revives_then_kills(tmp_path):
    clk = {"now": 0.0}
    pool = make_pool(tmp_path, clock=lambda: clk["now"], worker_ttl=10.0)
    pool.submit("bfs", "baseline")
    worker_id = pool.fleet.register({})["worker_id"]
    job_id = pool.fleet.lease(worker_id)["job"]["job_id"]
    # suspect_after = ttl/2 = 5s of silence
    clk["now"] = 6.0
    pool.fleet.sweep()
    assert pool.state.workers[worker_id].state == WORKER_SUSPECT
    # a heartbeat lifts suspicion and keeps the lease
    beat = pool.fleet.heartbeat(worker_id, [job_id])
    assert beat == {"known": True, "abort": []}
    assert pool.state.workers[worker_id].state == WORKER_ALIVE
    # dead_after = ttl = 10s of silence: dead, cells reclaimed
    clk["now"] = 17.0
    pool.fleet.sweep()
    worker = pool.state.workers[worker_id]
    assert worker.state == WORKER_DEAD
    assert "no heartbeat" in worker.reason
    job = pool.state.jobs[job_id]
    assert job.state == SUBMITTED
    assert job.owner == ""
    assert pool.state.counters["reclaimed"] == 1
    # the zombie's next heartbeat is answered: re-register, abort all
    beat = pool.fleet.heartbeat(worker_id, [job_id])
    assert beat["known"] is False
    assert beat["reregister"] is True
    assert job_id in beat["abort"]


def test_heartbeat_aborts_cells_the_worker_no_longer_owns(tmp_path):
    pool = make_pool(tmp_path)
    worker_id = pool.fleet.register({})["worker_id"]
    beat = pool.fleet.heartbeat(worker_id, ["bfs:nonexistent"])
    assert beat["known"] is True
    assert beat["abort"] == ["bfs:nonexistent"]


def test_heartbeat_preempts_cancelled_remote_cells(tmp_path):
    pool = make_pool(tmp_path)
    job = pool.submit("bfs", "baseline")
    worker_id = pool.fleet.register({})["worker_id"]
    pool.fleet.lease(worker_id)
    pool.cancel(job.job_id)  # RUNNING: flagged for preemption
    beat = pool.fleet.heartbeat(worker_id, [job.job_id])
    assert beat["abort"] == [job.job_id]
    assert pool.state.jobs[job.job_id].state == CANCELLED
    assert pool.state.counters["cancelled"] == 1


def test_heartbeat_fails_remote_cells_past_their_deadline(tmp_path):
    wall = {"now": 1000.0}
    pool = make_pool(tmp_path, wall_clock=lambda: wall["now"])
    job = pool.submit("bfs", "baseline", deadline=5.0)
    worker_id = pool.fleet.register({})["worker_id"]
    pool.fleet.lease(worker_id)
    wall["now"] = 1010.0  # the cell blew its deadline mid-run
    beat = pool.fleet.heartbeat(worker_id, [job.job_id])
    assert beat["abort"] == [job.job_id]
    failed = pool.state.jobs[job.job_id]
    assert failed.state == FAILED
    assert failed.error_class == "deadline"


# --------------------------------------------------------------------- #
# Fencing: reconnection identity, stale-token commits, duplicates
# --------------------------------------------------------------------- #


def test_reconnecting_worker_gets_new_id_and_stale_token_is_fenced(
    tmp_path,
):
    pool = make_pool(tmp_path)
    pool.submit("bfs", "baseline")
    fleet = pool.fleet
    old_id = fleet.register({})["worker_id"]
    old_lease = fleet.lease(old_id)["job"]
    # partition: the detector declares the worker dead, reclaims the cell
    assert fleet.declare_dead(old_id, "partitioned") is True
    # the reconnecting worker is a *new* identity with fresh tokens
    new_id = fleet.register({})["worker_id"]
    assert new_id != old_id
    new_lease = fleet.lease(new_id)["job"]
    assert new_lease["job_id"] == old_lease["job_id"]
    assert new_lease["fence"] > old_lease["fence"]
    # the zombie's in-flight commit presents the old token: answered,
    # journaled as an audit record, discarded
    verdict = fleet.commit(
        old_id, old_lease["job_id"], old_lease["fence"], "done",
        result={"cycles": 666.0},
    )
    assert verdict == {
        "accepted": False,
        "fenced": True,
        "expected": new_lease["fence"],
        "state": RUNNING,
        "reregister": True,
    }
    assert pool.state.counters["fenced"] == 1
    # the live generation's commit lands; the zombie's bytes are gone
    landed = fleet.commit(
        new_id, new_lease["job_id"], new_lease["fence"], "done",
        result={"cycles": 42.0},
    )
    assert landed["accepted"] is True
    job = pool.state.jobs[new_lease["job_id"]]
    assert job.state == DONE
    assert job.result == {"cycles": 42.0}
    assert pool.state.counters["done"] == 1


def test_duplicate_commit_is_acknowledged_idempotently(tmp_path):
    pool = make_pool(tmp_path)
    pool.submit("bfs", "baseline")
    fleet = pool.fleet
    worker_id = fleet.register({})["worker_id"]
    lease = fleet.lease(worker_id)["job"]
    first = fleet.commit(
        worker_id, lease["job_id"], lease["fence"], "done",
        result={"cycles": 1.0},
    )
    assert first == {"accepted": True, "state": DONE}
    # a retry after a lost response re-delivers the same commit
    again = fleet.commit(
        worker_id, lease["job_id"], lease["fence"], "done",
        result={"cycles": 1.0},
    )
    assert again == {"accepted": True, "duplicate": True, "state": DONE}
    assert pool.state.counters["done"] == 1
    assert pool.state.counters["fenced"] == 0


def test_commit_from_detached_worker_is_fenced_even_with_current_token(
    tmp_path,
):
    pool = make_pool(tmp_path)
    pool.submit("bfs", "baseline")
    fleet = pool.fleet
    worker_id = fleet.register({})["worker_id"]
    lease = fleet.lease(worker_id)["job"]
    fleet.declare_dead(worker_id, "operator")
    # reclamation advanced the fence, so even the token the worker was
    # legitimately issued is stale now
    verdict = fleet.commit(
        worker_id, lease["job_id"], lease["fence"], "done",
        result={"cycles": 1.0},
    )
    assert verdict["accepted"] is False
    assert verdict["fenced"] is True
    assert pool.state.jobs[lease["job_id"]].state == SUBMITTED


def test_commit_validation(tmp_path):
    pool = make_pool(tmp_path)
    pool.submit("bfs", "baseline")
    fleet = pool.fleet
    worker_id = fleet.register({})["worker_id"]
    lease = fleet.lease(worker_id)["job"]
    with pytest.raises(ProtocolError):
        fleet.commit(worker_id, lease["job_id"], lease["fence"], "maybe")
    with pytest.raises(ProtocolError):
        fleet.commit(worker_id, lease["job_id"], lease["fence"], "done")
    with pytest.raises(ProtocolError):
        fleet.commit(worker_id, "no:such", lease["fence"], "done",
                     result={})


# --------------------------------------------------------------------- #
# WAL: replay identity, splice detection, restart semantics
# --------------------------------------------------------------------- #


def _rec(seq, rtype, payload):
    return {"seq": seq, "type": rtype, "payload": payload}


def _submitted(job_id="bfs:baseline"):
    return Job(job_id=job_id, benchmark="bfs", config_name="baseline")


def test_replay_refuses_stale_fence_in_done_record():
    state = QueueState()
    state.apply(_rec(1, "submit", {"job": _submitted().to_payload()}))
    state.apply(_rec(2, "lease", {"job_id": "bfs:baseline", "owner": "w1",
                                  "unix": 0.0, "fence": 2}))
    state.apply(_rec(3, "start", {"job_id": "bfs:baseline"}))
    with pytest.raises(JournalError):
        state.apply(_rec(4, "done", {"job_id": "bfs:baseline",
                                     "result": {}, "fence": 1}))


def test_replay_refuses_spliced_lease_fence():
    state = QueueState()
    state.apply(_rec(1, "submit", {"job": _submitted().to_payload()}))
    # a lease record whose fence disagrees with its own seq was spliced
    # from another journal
    with pytest.raises(JournalError):
        state.apply(_rec(2, "lease", {"job_id": "bfs:baseline",
                                      "owner": "w1", "unix": 0.0,
                                      "fence": 99}))


def test_fleet_journal_replays_identically(tmp_path):
    pool = make_pool(tmp_path)
    pool.submit("bfs", "baseline")
    fleet = pool.fleet
    old_id = fleet.register({"benchmarks": ["bfs"]})["worker_id"]
    old_lease = fleet.lease(old_id)["job"]
    fleet.declare_dead(old_id, "partitioned")
    new_id = fleet.register({})["worker_id"]
    new_lease = fleet.lease(new_id)["job"]
    fleet.commit(new_id, new_lease["job_id"], new_lease["fence"], "done",
                 result={"cycles": 42.0})
    fleet.commit(old_id, old_lease["job_id"], old_lease["fence"], "done",
                 result={"cycles": 666.0})  # fenced
    fleet.deregister(new_id)
    expected = pool.state.snapshot_payload()
    pool.close()
    for _ in range(2):  # replay is deterministic: twice, same answer
        verify = SweepService(pool.directory, scale="micro", seed=0)
        verify.recover(readonly=True)
        assert verify.state.snapshot_payload() == expected
        assert verify.state.counters["fenced"] == 1
        assert verify.state.workers[old_id].state == WORKER_DEAD
        assert verify.state.workers[new_id].state == WORKER_LEFT
        lines = verify.status_lines()
        assert any("fenced=1" in line for line in lines)
        assert any(
            line.startswith("worker") and old_id in line and "DEAD" in line
            for line in lines
        )
        verify.close()


def test_restart_declares_attached_workers_dead(tmp_path):
    pool = make_pool(tmp_path)
    pool.submit("bfs", "baseline")
    worker_id = pool.fleet.register({})["worker_id"]
    job_id = pool.fleet.lease(worker_id)["job"]["job_id"]
    pool.close()  # daemon dies with the worker attached and leased
    revived = SweepService(pool.directory, scale="micro", seed=0)
    revived.recover()
    worker = revived.state.workers[worker_id]
    assert worker.state == WORKER_DEAD
    assert worker.reason == "daemon restarted"
    # the cell went back to the queue for the next incarnation
    assert revived.state.jobs[job_id].state == SUBMITTED
    revived.close()


# --------------------------------------------------------------------- #
# End-to-end over real sockets: partition, fencing, chaos shim
# --------------------------------------------------------------------- #


class DaemonHarness:
    """A live daemon on a background thread, torn down on exit."""

    def __init__(self, pool, **kwargs):
        kwargs.setdefault("idle_poll", 0.02)
        self.daemon = SweepDaemon(pool, **kwargs)
        self.pool = pool
        self.thread = threading.Thread(
            target=self.daemon.serve_forever, daemon=True
        )

    def __enter__(self):
        self.thread.start()
        client = DaemonClient(self.pool.directory, timeout=5.0)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                client.ping()
                break
            except Exception:
                time.sleep(0.02)
        else:
            raise RuntimeError("daemon never came up")
        self.client = client
        return self

    def __exit__(self, *exc_info):
        try:
            self.client.shutdown()
        except Exception:
            pass
        self.client.close()
        self.thread.join(timeout=10.0)
        assert not self.thread.is_alive(), "daemon failed to drain"


def test_server_side_drop_is_absorbed_by_client_retry(tmp_path):
    pool = make_pool(tmp_path)
    with DaemonHarness(pool) as h:
        set_net_faults(NetFaults([
            NetFaultSpec("server", NetFaultKind.DROP, 1, "ping"),
        ]))
        h.client.timeout = 0.3
        # the first ping vanishes server-side; the retry is answered
        assert h.client.ping()["ok"] is True
    assert pool.state.counters["done"] == 0


def test_server_side_duplicate_is_absorbed_by_rq_discard(tmp_path):
    pool = make_pool(tmp_path)
    with DaemonHarness(pool) as h:
        set_net_faults(NetFaults([
            NetFaultSpec("server", NetFaultKind.DUPLICATE, 1, "ping"),
        ]))
        assert h.client.ping()["ok"] is True
        # the duplicated response is still in the stream; the next
        # exchange must discard it by its stale rq stamp, not deliver it
        stats = h.client.stats()
        assert stats["ok"] is True
        assert "fleet" in stats


def test_partition_fences_zombie_commit_end_to_end(tmp_path):
    """The acceptance scenario over real sockets.

    Worker A leases a cell, gets partitioned (every heartbeat dropped
    by the ``net:`` shim), is declared dead, and its cell is reassigned
    to worker B.  B's commit lands; A's late commit presents a stale
    fencing token and is rejected, journaled, and counted — and the WAL
    replays to the identical snapshot afterwards.
    """
    clk = {"now": 0.0}
    pool = make_pool(tmp_path, clock=lambda: clk["now"], worker_ttl=3.0)
    with DaemonHarness(pool, remote_only=True) as h:
        job = h.client.submit("bfs", "baseline")
        assert job["cached"] is False
        worker_a = DaemonClient(pool.directory, timeout=0.5)
        worker_a.side = "worker"
        a_id = worker_a.register({"benchmarks": ["bfs"]})["worker_id"]
        a_job = worker_a.lease_cell(a_id)["job"]
        assert a_job["job_id"] == job["job_id"]
        # partition A: every heartbeat it sends is lost in flight
        set_net_faults(NetFaults([
            NetFaultSpec("worker", NetFaultKind.DROP, 0, "heartbeat"),
        ]))
        with pytest.raises(DaemonUnavailable):
            worker_a.worker_heartbeat(a_id, [a_job["job_id"]])
        # silence past dead_after: the detector reaps A, reclaims
        clk["now"] += 4.0
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            worker = pool.state.workers.get(a_id)
            if worker is not None and worker.state == WORKER_DEAD:
                break
            time.sleep(0.02)
        assert pool.state.workers[a_id].state == WORKER_DEAD
        assert pool.state.jobs[job["job_id"]].state == SUBMITTED
        # worker B picks the reclaimed cell up under a fresh token
        worker_b = DaemonClient(pool.directory, timeout=5.0)
        worker_b.side = "worker"
        b_id = worker_b.register({})["worker_id"]
        b_job = worker_b.lease_cell(b_id)["job"]
        assert b_job["job_id"] == a_job["job_id"]
        assert b_job["fence"] > a_job["fence"]
        accepted = worker_b.request({
            "op": "commit", "worker_id": b_id,
            "job_id": b_job["job_id"], "fence": b_job["fence"],
            "status": "done", "result": {"cycles": 42.0},
        })
        assert accepted["accepted"] is True
        # A wakes up and tries to commit its stale generation
        fenced = worker_a.request({
            "op": "commit", "worker_id": a_id,
            "job_id": a_job["job_id"], "fence": a_job["fence"],
            "status": "done", "result": {"cycles": 666.0},
        })
        assert fenced["accepted"] is False
        assert fenced["fenced"] is True
        assert fenced["expected"] == b_job["fence"]
        assert fenced["reregister"] is True
        # the reassigned result is what the service serves
        stats = h.client.stats()
        assert stats["fleet"]["fenced"] == 1
        final = pool.state.jobs[job["job_id"]]
        assert final.state == DONE
        assert final.result == {"cycles": 42.0}
        worker_a.close()
        worker_b.close()
    # the WAL replays to the identical snapshot, fenced audit included
    expected = pool.state.snapshot_payload()
    verify = SweepService(pool.directory, scale="micro", seed=0)
    verify.recover(readonly=True)
    assert verify.state.snapshot_payload() == expected
    assert verify.state.counters["fenced"] == 1
    assert verify.state.counters["done"] == 1
    assert any("fenced=1" in line for line in verify.status_lines())
    verify.close()
