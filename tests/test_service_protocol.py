"""Wire-protocol unit tests: framing, validation, idempotency keys."""

import socket
import struct

import pytest

from repro.engine.errors import ProtocolError
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_body,
    encode_frame,
    error_response,
    frame_length,
    idempotency_key,
    ok_response,
    recv_frame,
    send_frame,
)


def test_frame_roundtrip_over_socketpair():
    a, b = socket.socketpair()
    try:
        send_frame(a, {"op": "ping", "n": 1})
        body = recv_frame(b, timeout=2.0)
        assert body == {"op": "ping", "n": 1}
    finally:
        a.close()
        b.close()


def test_encode_is_canonical_and_deterministic():
    one = encode_frame({"b": 1, "a": 2})
    two = encode_frame({"a": 2, "b": 1})
    assert one == two  # sorted keys: key order cannot change the bytes


def test_oversized_body_refused_at_encode():
    with pytest.raises(ProtocolError, match="frame cap"):
        encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})


def test_frame_length_validation():
    assert frame_length(struct.pack(">I", 17)) == 17
    with pytest.raises(ProtocolError, match="truncated"):
        frame_length(b"\x00\x00")
    with pytest.raises(ProtocolError, match="zero-length"):
        frame_length(struct.pack(">I", 0))
    with pytest.raises(ProtocolError, match="exceeds"):
        frame_length(struct.pack(">I", MAX_FRAME_BYTES + 1))


def test_decode_body_rejects_garbage_and_non_objects():
    with pytest.raises(ProtocolError, match="not valid JSON"):
        decode_body(b"\xff\xfe{{{")
    with pytest.raises(ProtocolError, match="JSON object"):
        decode_body(b"[1, 2, 3]")
    assert decode_body(b'{"op": "ping"}') == {"op": "ping"}


def test_recv_frame_raises_on_eof_mid_frame():
    a, b = socket.socketpair()
    try:
        a.sendall(struct.pack(">I", 100) + b"{\"half\": tru")
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(b, timeout=2.0)
    finally:
        b.close()


def test_idempotency_key_is_content_derived():
    key = idempotency_key("bfs", "abc123", "micro", 0)
    assert key == idempotency_key("bfs", "abc123", "micro", 0)
    assert len(key) == 64 and int(key, 16) >= 0
    # every component of the content identity changes the key
    assert key != idempotency_key("nw", "abc123", "micro", 0)
    assert key != idempotency_key("bfs", "def456", "micro", 0)
    assert key != idempotency_key("bfs", "abc123", "small", 0)
    assert key != idempotency_key("bfs", "abc123", "micro", 1)


def test_response_constructors():
    assert ok_response(x=1) == {"ok": True, "x": 1}
    shed = error_response("admission", "full", retry_after=2.5)
    assert shed == {
        "ok": False,
        "error": "admission",
        "message": "full",
        "retry_after": 2.5,
    }
    plain = error_response("protocol", "bad")
    assert "retry_after" not in plain
