"""Tests for the simulation driver and warp runtime state machine."""

import pytest

from repro.arch.kernel import MemoryInstruction, WarpTrace
from repro.arch.warp import WarpRuntime
from repro.engine.simulator import LivelockError, SimulationError, Simulator


class TestSimulator:
    def test_run_drains_queue(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule_after(5.0, lambda: seen.append(2))
        end = sim.run()
        assert seen == [1, 2]
        assert end == 5.0
        assert sim.events_run == 2

    def test_until_predicate_stops_early(self):
        sim = Simulator()
        seen = []
        for t in range(10):
            sim.schedule(float(t), lambda t=t: seen.append(t))
        sim.run(until=lambda: len(seen) >= 3)
        assert len(seen) == 3

    def test_event_budget_detects_livelock(self):
        sim = Simulator(max_events=100)

        def respawn():
            sim.schedule_after(1.0, respawn)

        sim.schedule(0.0, respawn)
        with pytest.raises(SimulationError):
            sim.run()

    def test_stats_shared_registry(self):
        sim = Simulator()
        sim.stats.group("a").counter("x").inc()
        assert sim.stats.dump()["a"]["x"] == 1


def make_warp(transactions_per_instr, n_instr=2):
    instrs = [
        MemoryInstruction(1.0, tuple(range(0, 128 * k, 128)) or (0,))
        for k in [transactions_per_instr] * n_instr
    ]
    trace = WarpTrace(instrs)

    class TB:
        hw_tb_id = 0

    return WarpRuntime(trace, warp_id=0, tb=TB(), age=0)


class TestWarpRuntime:
    def test_single_transaction_lifecycle(self):
        warp = make_warp(1, n_instr=2)
        assert not warp.done
        warp.begin_instruction()
        warp.next_transaction()
        assert warp.transaction_done()      # instruction retires
        assert warp.pc == 1
        warp.begin_instruction()
        warp.next_transaction()
        assert warp.transaction_done()
        assert warp.done

    def test_multi_transaction_join(self):
        warp = make_warp(3, n_instr=1)
        instr = warp.begin_instruction()
        assert len(instr.transactions) == 3
        for _ in range(3):
            warp.next_transaction()
        assert not warp.transaction_done()
        assert not warp.transaction_done()
        assert warp.transaction_done()
        assert warp.done

    def test_issue_pointer_resets_between_instructions(self):
        warp = make_warp(2, n_instr=2)
        warp.begin_instruction()
        warp.next_transaction()
        warp.next_transaction()
        warp.transaction_done()
        warp.transaction_done()
        assert warp.tx_issued == 0
        assert warp.pc == 1

    def test_empty_trace_is_done_immediately(self):
        class TB:
            hw_tb_id = 0

        warp = WarpRuntime(WarpTrace([]), 0, TB(), 0)
        assert warp.done
        assert warp.current_instruction() is None

    def test_instructions_remaining(self):
        warp = make_warp(1, n_instr=5)
        assert warp.instructions_remaining == 5
        warp.begin_instruction()
        warp.next_transaction()
        warp.transaction_done()
        assert warp.instructions_remaining == 4


class TestForwardProgressWatchdog:
    def _respawning_sim(self, **kwargs):
        sim = Simulator(**kwargs)

        def respawn():
            sim.schedule_after(1.0, respawn)

        sim.schedule(0.0, respawn)
        return sim

    def test_no_progress_raises_livelock(self):
        sim = self._respawning_sim(progress_window=50)
        with pytest.raises(LivelockError):
            sim.run()

    def test_progress_marks_reset_the_window(self):
        sim = Simulator(progress_window=50)
        seen = []

        def tick():
            seen.append(sim.events_run)
            sim.note_progress()           # real work every event
            if len(seen) < 200:
                sim.schedule_after(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()                         # 200 events >> window of 50
        assert len(seen) == 200
        assert sim.progress_marks == 200

    def test_livelock_error_carries_diagnostics(self):
        sim = self._respawning_sim(progress_window=10)
        sim.add_diagnostic_hook(lambda: "component: 3 TBs stuck")
        with pytest.raises(LivelockError) as info:
            sim.run()
        message = str(info.value)
        assert "pending events" in message
        assert "next events" in message
        assert "component: 3 TBs stuck" in message

    def test_failing_diagnostic_hook_does_not_mask_livelock(self):
        sim = self._respawning_sim(progress_window=10)

        def broken():
            raise RuntimeError("hook exploded")

        sim.add_diagnostic_hook(broken)
        with pytest.raises(LivelockError) as info:
            sim.run()
        assert "diagnostic hook failed" in str(info.value)

    def test_livelock_is_simulation_error(self):
        assert issubclass(LivelockError, SimulationError)
        assert LivelockError.error_class == "livelock"

    def test_max_events_backstop_still_enforced(self):
        # even a model that dutifully notes progress cannot run forever
        sim = Simulator(max_events=100, progress_window=10)

        def busy():
            sim.note_progress()
            sim.schedule_after(1.0, busy)

        sim.schedule(0.0, busy)
        with pytest.raises(LivelockError):
            sim.run()
