"""Tests for the simulation driver and warp runtime state machine."""

import pytest

from repro.arch.kernel import MemoryInstruction, WarpTrace
from repro.arch.warp import WarpRuntime
from repro.engine.simulator import SimulationError, Simulator


class TestSimulator:
    def test_run_drains_queue(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule_after(5.0, lambda: seen.append(2))
        end = sim.run()
        assert seen == [1, 2]
        assert end == 5.0
        assert sim.events_run == 2

    def test_until_predicate_stops_early(self):
        sim = Simulator()
        seen = []
        for t in range(10):
            sim.schedule(float(t), lambda t=t: seen.append(t))
        sim.run(until=lambda: len(seen) >= 3)
        assert len(seen) == 3

    def test_event_budget_detects_livelock(self):
        sim = Simulator(max_events=100)

        def respawn():
            sim.schedule_after(1.0, respawn)

        sim.schedule(0.0, respawn)
        with pytest.raises(SimulationError):
            sim.run()

    def test_stats_shared_registry(self):
        sim = Simulator()
        sim.stats.group("a").counter("x").inc()
        assert sim.stats.dump()["a"]["x"] == 1


def make_warp(transactions_per_instr, n_instr=2):
    instrs = [
        MemoryInstruction(1.0, tuple(range(0, 128 * k, 128)) or (0,))
        for k in [transactions_per_instr] * n_instr
    ]
    trace = WarpTrace(instrs)

    class TB:
        hw_tb_id = 0

    return WarpRuntime(trace, warp_id=0, tb=TB(), age=0)


class TestWarpRuntime:
    def test_single_transaction_lifecycle(self):
        warp = make_warp(1, n_instr=2)
        assert not warp.done
        warp.begin_instruction()
        warp.next_transaction()
        assert warp.transaction_done()      # instruction retires
        assert warp.pc == 1
        warp.begin_instruction()
        warp.next_transaction()
        assert warp.transaction_done()
        assert warp.done

    def test_multi_transaction_join(self):
        warp = make_warp(3, n_instr=1)
        instr = warp.begin_instruction()
        assert len(instr.transactions) == 3
        for _ in range(3):
            warp.next_transaction()
        assert not warp.transaction_done()
        assert not warp.transaction_done()
        assert warp.transaction_done()
        assert warp.done

    def test_issue_pointer_resets_between_instructions(self):
        warp = make_warp(2, n_instr=2)
        warp.begin_instruction()
        warp.next_transaction()
        warp.next_transaction()
        warp.transaction_done()
        warp.transaction_done()
        assert warp.tx_issued == 0
        assert warp.pc == 1

    def test_empty_trace_is_done_immediately(self):
        class TB:
            hw_tb_id = 0

        warp = WarpRuntime(WarpTrace([]), 0, TB(), 0)
        assert warp.done
        assert warp.current_instruction() is None

    def test_instructions_remaining(self):
        warp = make_warp(1, n_instr=5)
        assert warp.instructions_remaining == 5
        warp.begin_instruction()
        warp.next_transaction()
        warp.transaction_done()
        assert warp.instructions_remaining == 4
