"""Tests for GPUConfig.__post_init__ validation (fail fast, name field)."""

import pytest

from repro.arch.config import BASELINE_CONFIG, L1TLBMode
from repro.engine.errors import ConfigError


class TestPositivity:
    @pytest.mark.parametrize(
        "field",
        ["num_sms", "l1_tlb_entries", "l2_tlb_entries", "num_walkers",
         "max_tbs_per_sm", "page_size", "warp_size", "line_bytes"],
    )
    def test_nonpositive_rejected(self, field):
        with pytest.raises(ConfigError) as info:
            BASELINE_CONFIG.replace(**{field: 0})
        assert info.value.field == field
        assert field in str(info.value)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError) as info:
            BASELINE_CONFIG.replace(walk_latency=-1.0)
        assert info.value.field == "walk_latency"

    def test_zero_latency_allowed(self):
        BASELINE_CONFIG.replace(l1_tlb_latency=0.0)  # no raise

    def test_gpu_memory_cap_must_be_positive(self):
        with pytest.raises(ConfigError):
            BASELINE_CONFIG.replace(gpu_memory_bytes=0)
        BASELINE_CONFIG.replace(gpu_memory_bytes=None)  # uncapped: fine


class TestTLBGeometry:
    def test_entries_must_divide_by_assoc(self):
        with pytest.raises(ConfigError) as info:
            BASELINE_CONFIG.replace(l1_tlb_entries=65)
        assert "l1_tlb" in str(info.value)

    def test_assoc_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            BASELINE_CONFIG.replace(l1_tlb_entries=60, l1_tlb_assoc=3)

    def test_set_count_must_be_power_of_two(self):
        # 96 entries / 4-way = 24 sets: divisible but not a power of two
        with pytest.raises(ConfigError):
            BASELINE_CONFIG.replace(l1_tlb_entries=96, l1_tlb_assoc=4)

    def test_l2_geometry_checked_too(self):
        with pytest.raises(ConfigError) as info:
            BASELINE_CONFIG.replace(l2_tlb_entries=500)
        assert "l2_tlb" in str(info.value)

    def test_page_size_power_of_two(self):
        with pytest.raises(ConfigError) as info:
            BASELINE_CONFIG.replace(page_size=5000)
        assert info.value.field == "page_size"


class TestPartitioning:
    def test_partition_count_must_align_with_sets(self):
        # PARTITIONED: 64 entries / 4-way = 16 sets must divide (or be
        # divided by) max_tbs_per_sm
        with pytest.raises(ConfigError) as info:
            BASELINE_CONFIG.replace(
                l1_tlb_mode=L1TLBMode.PARTITIONED, max_tbs_per_sm=6
            )
        assert "partition" in str(info.value).lower()

    def test_aligned_partitioning_accepted(self):
        BASELINE_CONFIG.replace(
            l1_tlb_mode=L1TLBMode.PARTITIONED, max_tbs_per_sm=8
        )
        BASELINE_CONFIG.replace(
            l1_tlb_mode=L1TLBMode.PARTITIONED_SHARING, max_tbs_per_sm=32
        )

    def test_baseline_mode_not_constrained(self):
        BASELINE_CONFIG.replace(
            l1_tlb_mode=L1TLBMode.BASELINE, max_tbs_per_sm=6
        )


class TestErrorShape:
    def test_config_error_is_value_error(self):
        # pre-taxonomy callers catch ValueError; keep that working
        with pytest.raises(ValueError):
            BASELINE_CONFIG.replace(num_sms=-1)

    def test_thread_warp_mismatch(self):
        with pytest.raises(ConfigError) as info:
            BASELINE_CONFIG.replace(max_threads_per_sm=2050)
        assert info.value.field == "max_threads_per_sm"
