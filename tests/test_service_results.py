"""Result-cache tests: byte identity, idempotent writes, quarantine."""

import json
import os

import pytest

from repro.service.results import ResultCache


def make_cache(tmp_path):
    return ResultCache(str(tmp_path / "results"))


def test_roundtrip_and_byte_identity(tmp_path):
    cache = make_cache(tmp_path)
    key = "k" * 64
    cache.put(key, {"cycles": 123.0}, job_id="bfs:baseline",
              benchmark="bfs", config_name="baseline",
              config_hash="h", scale="micro", seed=0)
    entry = cache.get(key)
    assert entry["result"] == {"cycles": 123.0}
    assert entry["job_id"] == "bfs:baseline"
    # a retried request reads the *exact same bytes* as the first
    first = cache.get_bytes(key)
    second = cache.get_bytes(key)
    assert first == second
    assert json.loads(first)["key"] == key


def test_put_is_first_write_wins(tmp_path):
    cache = make_cache(tmp_path)
    key = "k" * 64
    cache.put(key, {"cycles": 1.0})
    before = cache.get_bytes(key)
    cache.put(key, {"cycles": 999.0})  # must be a no-op
    assert cache.get_bytes(key) == before
    assert cache.stores == 1


def test_miss_returns_none(tmp_path):
    cache = make_cache(tmp_path)
    assert cache.get("m" * 64) is None
    assert cache.misses == 1


def test_corrupt_entry_quarantined_not_served(tmp_path):
    cache = make_cache(tmp_path)
    key = "k" * 64
    cache.put(key, {"cycles": 1.0})
    path = cache.path_for(key)
    with open(path, "w") as handle:
        handle.write('{"kind": "repro-result", "version": 1, truncated')
    assert cache.get(key) is None
    assert not os.path.exists(path)
    assert os.path.exists(path + ".invalid")
    # quarantined entries stay misses forever
    assert cache.get(key) is None


def test_foreign_or_mismatched_entry_quarantined(tmp_path):
    cache = make_cache(tmp_path)
    key = "k" * 64
    path = cache.path_for(key)
    os.makedirs(cache.directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump({"kind": "other", "version": 1, "key": key,
                   "result": {}}, handle)
    assert cache.get(key) is None
    assert os.path.exists(path + ".invalid")


def test_malformed_keys_refused(tmp_path):
    cache = make_cache(tmp_path)
    for bad in ("", "../escape", "a/b", "."):
        with pytest.raises(ValueError):
            cache.path_for(bad)


def test_stats(tmp_path):
    cache = make_cache(tmp_path)
    cache.put("a" * 64, {"x": 1})
    cache.get("a" * 64)
    cache.get("b" * 64)
    assert cache.stats() == {
        "entries": 1, "hits": 1, "misses": 1, "stores": 1,
        "store_failures": 0, "evictions": 0, "fenced_writes": 0,
    }
