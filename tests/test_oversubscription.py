"""Tests for UVM oversubscription, eviction, and TLB shootdown."""

import pytest

from repro import BASELINE_CONFIG, build_gpu
from repro.translation.uvm import UVMManager

from conftest import build_kernel


class TestUVMEviction:
    def test_capacity_enforced(self):
        uvm = UVMManager(gpu_memory_bytes=4 * 4096)
        for vpn in range(10):
            uvm.ensure_mapped(vpn)
        assert uvm.resident_pages <= 4
        assert uvm.eviction_count == 6

    def test_lru_victim_selection(self):
        uvm = UVMManager(gpu_memory_bytes=2 * 4096, far_fault_latency=100.0)
        uvm.ensure_mapped(1)
        uvm.ensure_mapped(2)
        uvm.ensure_mapped(1)          # touch 1: LRU is now 2
        uvm.ensure_mapped(3)          # evicts 2
        _ppn, latency = uvm.ensure_mapped(1)
        assert latency == 0.0          # 1 still resident
        _ppn, latency = uvm.ensure_mapped(2)
        assert latency == 100.0        # 2 was evicted, re-faults

    def test_eviction_unmaps_page_table(self):
        uvm = UVMManager(gpu_memory_bytes=4096)
        uvm.ensure_mapped(1)
        uvm.ensure_mapped(2)
        assert uvm.page_table.lookup(1) is None
        assert uvm.page_table.lookup(2) is not None

    def test_invalidate_hook_called_for_victims(self):
        evicted = []
        uvm = UVMManager(
            gpu_memory_bytes=2 * 4096, invalidate_hook=evicted.append
        )
        for vpn in range(5):
            uvm.ensure_mapped(vpn)
        assert evicted == [0, 1, 2]

    def test_unlimited_memory_never_evicts(self):
        uvm = UVMManager()
        for vpn in range(10_000):
            uvm.ensure_mapped(vpn)
        assert uvm.eviction_count == 0

    def test_capacity_below_page_rejected(self):
        with pytest.raises(ValueError):
            UVMManager(gpu_memory_bytes=100)


class TestSystemOversubscription:
    def test_oversubscribed_run_completes_with_refaults(self):
        kernel = build_kernel(num_tbs=4, warps_per_tb=2, instrs_per_warp=30,
                              pages_per_warp=20)
        unique_pages = 4 * 2 * 20
        cfg = BASELINE_CONFIG.replace(
            gpu_memory_bytes=(unique_pages // 4) * 4096,
            far_fault_latency=1000.0,
        )
        over = build_gpu(cfg)
        result = over.run(kernel)
        assert result.tbs_completed == 4
        # Oversubscription forces re-faults: more far faults than pages.
        assert result.far_faults > unique_pages
        assert over.walkers.uvm.eviction_count > 0

    def test_oversubscription_is_slower_than_fitting(self):
        kernel = build_kernel(num_tbs=4, warps_per_tb=2, instrs_per_warp=30,
                              pages_per_warp=20)
        fits = build_gpu(
            BASELINE_CONFIG.replace(far_fault_latency=1000.0)
        ).run(kernel)
        over = build_gpu(
            BASELINE_CONFIG.replace(
                gpu_memory_bytes=40 * 4096, far_fault_latency=1000.0
            )
        ).run(kernel)
        assert over.cycles > fits.cycles

    def test_shootdown_keeps_tlbs_consistent(self):
        kernel = build_kernel(num_tbs=2, warps_per_tb=1, instrs_per_warp=40,
                              pages_per_warp=30)
        cfg = BASELINE_CONFIG.replace(
            gpu_memory_bytes=16 * 4096, far_fault_latency=500.0
        )
        gpu = build_gpu(cfg)
        gpu.run(kernel)
        uvm = gpu.walkers.uvm
        # Every translation still cached anywhere must be resident.
        for sm in gpu.sms:
            for entry_set in sm.l1_tlb.sets:
                for vpn in entry_set:
                    assert uvm.is_resident(vpn), f"stale L1 entry {vpn}"
        for entry_set in gpu.l2_tlb.sets:
            for vpn in entry_set:
                assert uvm.is_resident(vpn), f"stale L2 entry {vpn}"
