"""Seeded randomized model checking for the TLB implementations.

A plain-dict reference model replays thousands of random probe /
insert / invalidate / flush operations against the real TLBs and must
agree op-for-op on hit/miss, returned PPN, sets probed, eviction
counts, and full final contents.  The reference reimplements the index
math from the paper's description (not from the implementation), so the
two disagree whenever either the storage or the policy drifts.

Configurations covered (satellite 3): shared VPN-indexed, shared with
granularity > 1 (the compressed TLB's hashed grouping), and TB-id
partitioned at several occupancies including the over-committed
``occupancy > num_sets`` modulo regime.  The zoo (ISSUE 10) extends the
matrix with FIFO replacement (no LRU promotion anywhere) and the
subregion-contiguity entry format, shared and TB-id partitioned.
"""

from collections import OrderedDict
from random import Random

import pytest

from repro.core.partitioned_tlb import (
    ContiguityPartitionedL1TLB,
    PartitionedL1TLB,
)
from repro.translation.compression import ContiguityTLB
from repro.translation.tlb import SetAssociativeTLB, VPNIndexPolicy

NUM_ENTRIES = 64
ASSOC = 4
NUM_SETS = NUM_ENTRIES // ASSOC


class ReferenceTLB:
    """Plain-dict LRU reference with independently-derived index math.

    ``own_sets(tb)`` returns the probe-ordered set list for a TB;
    insertion prefers ``own[(vpn // granularity) % len(own)]`` (the
    VPN-spread the paper uses to spread a TB's pages over its sets).
    ``refresh_lru=False`` models FIFO replacement: entries keep their
    insertion order, neither a hit nor a value refresh promotes them.
    """

    def __init__(self, own_sets, granularity=1, refresh_lru=True):
        self.sets = [OrderedDict() for _ in range(NUM_SETS)]
        self.own_sets = own_sets
        self.granularity = granularity
        self.refresh_lru = refresh_lru
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def probe(self, vpn, tb):
        probed = 0
        for set_idx in self.own_sets(vpn, tb):
            probed += 1
            if vpn in self.sets[set_idx]:
                if self.refresh_lru:
                    self.sets[set_idx].move_to_end(vpn)
                self.hits += 1
                return True, self.sets[set_idx][vpn], probed
        self.misses += 1
        return False, None, max(probed, 1)

    def insert(self, vpn, ppn, tb):
        own = list(self.own_sets(vpn, tb))
        preferred = own[(vpn // self.granularity) % len(own)] if len(
            own
        ) > 1 else own[0]
        ordered = [preferred] + [s for s in own if s != preferred]
        for set_idx in ordered:
            if vpn in self.sets[set_idx]:
                self.sets[set_idx][vpn] = ppn
                if self.refresh_lru:
                    self.sets[set_idx].move_to_end(vpn)
                return
        target = self.sets[ordered[0]]
        if len(target) >= ASSOC:
            target.popitem(last=False)
            self.evictions += 1
        target[vpn] = ppn

    def invalidate(self, vpn):
        for entry_set in self.sets:
            entry_set.pop(vpn, None)

    def flush(self):
        for entry_set in self.sets:
            entry_set.clear()

    def contents(self):
        return [sorted(s.items()) for s in self.sets]


class ContiguityReference:
    """Region-entry reference for the contiguity TLBs (ISSUE 10).

    Entries are ``region_base -> (anchor_ppn, bitmap)``; a page hits
    iff its region entry holds its offset bit and translates to
    ``anchor + offset``.  A fill whose frame disagrees with the anchor
    drops the stale entry and re-anchors fresh — the spec's remap rule,
    derived here from arXiv 2110.08613, not from the implementation.
    """

    def __init__(self, own_sets, max_ratio, refresh_lru=True):
        self.sets = [OrderedDict() for _ in range(NUM_SETS)]
        self.own_sets = own_sets
        self.max_ratio = max_ratio
        self.refresh_lru = refresh_lru
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _split(self, vpn):
        offset = vpn % self.max_ratio
        return vpn - offset, offset

    def probe(self, vpn, tb):
        base, offset = self._split(vpn)
        probed = 0
        for set_idx in self.own_sets(vpn, tb):
            probed += 1
            entry = self.sets[set_idx].get(base)
            if entry is not None and (entry[1] >> offset) & 1:
                if self.refresh_lru:
                    self.sets[set_idx].move_to_end(base)
                self.hits += 1
                return True, entry[0] + offset, probed
        self.misses += 1
        return False, None, max(probed, 1)

    def insert(self, vpn, ppn, tb):
        base, offset = self._split(vpn)
        own = list(self.own_sets(vpn, tb))
        preferred = own[(vpn // self.max_ratio) % len(own)] if len(
            own
        ) > 1 else own[0]
        ordered = [preferred] + [s for s in own if s != preferred]
        for set_idx in ordered:
            entry = self.sets[set_idx].get(base)
            if entry is None:
                continue
            anchor, bitmap = entry
            if anchor + offset == ppn:
                self.sets[set_idx][base] = (anchor, bitmap | (1 << offset))
                if self.refresh_lru:
                    self.sets[set_idx].move_to_end(base)
                return
            # stale anchor: drop the entry, fall through to a fresh fill
            del self.sets[set_idx][base]
        target = self.sets[ordered[0]]
        if len(target) >= ASSOC:
            target.popitem(last=False)
            self.evictions += 1
        target[base] = (ppn - offset, 1 << offset)

    def invalidate(self, vpn):
        base, offset = self._split(vpn)
        bit = 1 << offset
        for entry_set in self.sets:
            entry = entry_set.get(base)
            if entry is not None and entry[1] & bit:
                remaining = entry[1] & ~bit
                if remaining:
                    entry_set[base] = (entry[0], remaining)
                else:
                    del entry_set[base]

    def flush(self):
        for entry_set in self.sets:
            entry_set.clear()

    def contents(self):
        return [sorted(s.items()) for s in self.sets]


def shared_sets(granularity):
    """Baseline VPN indexing: one home set per VPN group."""
    def own(vpn, tb):
        return ((vpn // granularity) % NUM_SETS,)
    return own


def partitioned_sets(occupancy):
    """TB-id tiling from the paper: TB i owns [i*S//T, (i+1)*S//T)."""
    def own(vpn, tb):
        if occupancy >= NUM_SETS:
            return (tb % NUM_SETS,)
        slot = tb % occupancy
        return range(
            (slot * NUM_SETS) // occupancy,
            ((slot + 1) * NUM_SETS) // occupancy,
        )
    return own


def make_shared(granularity=1, replacement="lru"):
    return SetAssociativeTLB(
        NUM_ENTRIES, ASSOC, 1.0,
        policy=VPNIndexPolicy(NUM_SETS, granularity=granularity),
        replacement=replacement,
    )


def make_partitioned(occupancy):
    return PartitionedL1TLB(
        NUM_ENTRIES, ASSOC, 1.0, sharing=None, occupancy=occupancy
    )


CASES = [
    pytest.param(lambda: make_shared(1), shared_sets(1), 1, id="shared-g1"),
    pytest.param(lambda: make_shared(4), shared_sets(4), 1, id="shared-g4"),
    pytest.param(lambda: make_shared(8), shared_sets(8), 1, id="shared-g8"),
    pytest.param(
        lambda: make_partitioned(1), partitioned_sets(1), 1, id="part-occ1"
    ),
    pytest.param(
        lambda: make_partitioned(3), partitioned_sets(3), 1, id="part-occ3"
    ),
    pytest.param(
        lambda: make_partitioned(16), partitioned_sets(16), 1, id="part-occ16"
    ),
    pytest.param(
        lambda: make_partitioned(40), partitioned_sets(40), 1,
        id="part-overcommit",
    ),
]


def drive_model_check(tlb, ref, seed, ppn_for=None):
    """5000-op random lockstep between a real TLB and its reference."""
    rng = Random(seed)
    if ppn_for is None:
        ppn_for = lambda vpn, rng: rng.randrange(10_000)  # noqa: E731
    for step in range(5_000):
        roll = rng.random()
        if roll < 0.06:
            vpn = rng.randrange(300)
            tlb.invalidate(vpn)
            ref.invalidate(vpn)
            continue
        if roll < 0.065:
            tlb.flush()
            ref.flush()
            continue
        vpn = rng.randrange(300)
        tb = rng.randrange(48)
        got = tlb.probe(vpn, tb_id=tb)
        want_hit, want_ppn, want_probed = ref.probe(vpn, tb)
        assert (got.hit, got.ppn, got.sets_probed) == (
            want_hit, want_ppn, want_probed
        ), f"step {step}: probe(vpn={vpn}, tb={tb}) diverged"
        if not got.hit:
            ppn = ppn_for(vpn, rng)
            tlb.insert(vpn, ppn, tb_id=tb)
            ref.insert(vpn, ppn, tb)
        if step % 500 == 0:
            assert [
                sorted(s.items()) for s in tlb.sets
            ] == ref.contents(), f"step {step}: contents diverged"
    assert tlb.hits == ref.hits
    assert tlb.misses == ref.misses
    assert tlb.stats.counter_value("evictions") == ref.evictions
    assert [sorted(s.items()) for s in tlb.sets] == ref.contents()


@pytest.mark.parametrize("make_tlb,own_sets,granularity", CASES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_ops_match_reference(make_tlb, own_sets, granularity, seed):
    tlb = make_tlb()
    # the reference spreads inserts with the *policy's* granularity
    policy_granularity = getattr(tlb.policy, "granularity", 1)
    ref = ReferenceTLB(own_sets, granularity=policy_granularity)
    drive_model_check(tlb, ref, seed)


def make_contiguity(max_ratio):
    return ContiguityTLB(
        NUM_ENTRIES, ASSOC, 1.0, max_ratio=max_ratio,
        decompression_latency=0.0,
    )


def make_contiguity_partitioned(occupancy, max_ratio, replacement="lru"):
    return ContiguityPartitionedL1TLB(
        NUM_ENTRIES, ASSOC, 1.0, max_ratio=max_ratio,
        decompression_latency=0.0, sharing=None, occupancy=occupancy,
        replacement=replacement,
    )


#: zoo cases: (make_tlb, make_ref) pairs added by ISSUE 10
ZOO_CASES = [
    pytest.param(
        lambda: make_shared(1, replacement="fifo"),
        lambda: ReferenceTLB(shared_sets(1), refresh_lru=False),
        id="fifo-shared",
    ),
    pytest.param(
        lambda: PartitionedL1TLB(
            NUM_ENTRIES, ASSOC, 1.0, sharing=None, occupancy=3,
            replacement="fifo",
        ),
        lambda: ReferenceTLB(partitioned_sets(3), refresh_lru=False),
        id="fifo-part-occ3",
    ),
    pytest.param(
        lambda: make_contiguity(8),
        lambda: ContiguityReference(shared_sets(8), 8),
        id="contig-shared-r8",
    ),
    pytest.param(
        lambda: make_contiguity(4),
        lambda: ContiguityReference(shared_sets(4), 4),
        id="contig-shared-r4",
    ),
    pytest.param(
        lambda: make_contiguity_partitioned(3, 8),
        lambda: ContiguityReference(partitioned_sets(3), 8),
        id="contig-part-occ3",
    ),
    pytest.param(
        lambda: make_contiguity_partitioned(40, 8),
        lambda: ContiguityReference(partitioned_sets(40), 8),
        id="contig-part-overcommit",
    ),
    pytest.param(
        lambda: make_contiguity_partitioned(3, 8, replacement="fifo"),
        lambda: ContiguityReference(
            partitioned_sets(3), 8, refresh_lru=False
        ),
        id="contig-fifo-part-occ3",
    ),
]


def _zoo_ppn(vpn, rng):
    # half the fills are region-anchored (base+4096, coalescible into
    # the anchor), half scattered (forces the re-anchor/remap path)
    return vpn + 4096 if rng.random() < 0.5 else rng.randrange(10_000)


@pytest.mark.parametrize("make_tlb,make_ref", ZOO_CASES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_zoo_random_ops_match_reference(make_tlb, make_ref, seed):
    drive_model_check(make_tlb(), make_ref(), seed, ppn_for=_zoo_ppn)


@pytest.mark.parametrize("occupancy", [1, 3, 5, 16])
def test_reoccupancy_remaps_consistently(occupancy):
    """configure_occupancy mid-stream must keep probe/insert coherent:
    after remapping, a fresh insert is always found by a fresh probe."""
    tlb = make_partitioned(16)
    rng = Random(7)
    for vpn in range(64):
        tlb.insert(vpn, vpn, tb_id=rng.randrange(16))
    tlb.configure_occupancy(occupancy)
    for step in range(500):
        vpn = 1_000 + step
        tb = rng.randrange(32)
        tlb.insert(vpn, vpn * 3, tb_id=tb)
        result = tlb.probe(vpn, tb_id=tb)
        assert result.hit and result.ppn == vpn * 3
