"""Seeded randomized model checking for the TLB implementations.

A plain-dict reference model replays thousands of random probe /
insert / invalidate / flush operations against the real TLBs and must
agree op-for-op on hit/miss, returned PPN, sets probed, eviction
counts, and full final contents.  The reference reimplements the index
math from the paper's description (not from the implementation), so the
two disagree whenever either the storage or the policy drifts.

Configurations covered (satellite 3): shared VPN-indexed, shared with
granularity > 1 (the compressed TLB's hashed grouping), and TB-id
partitioned at several occupancies including the over-committed
``occupancy > num_sets`` modulo regime.
"""

from collections import OrderedDict
from random import Random

import pytest

from repro.core.partitioned_tlb import PartitionedL1TLB
from repro.translation.tlb import SetAssociativeTLB, VPNIndexPolicy

NUM_ENTRIES = 64
ASSOC = 4
NUM_SETS = NUM_ENTRIES // ASSOC


class ReferenceTLB:
    """Plain-dict LRU reference with independently-derived index math.

    ``own_sets(tb)`` returns the probe-ordered set list for a TB;
    insertion prefers ``own[(vpn // granularity) % len(own)]`` (the
    VPN-spread the paper uses to spread a TB's pages over its sets).
    """

    def __init__(self, own_sets, granularity=1):
        self.sets = [OrderedDict() for _ in range(NUM_SETS)]
        self.own_sets = own_sets
        self.granularity = granularity
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def probe(self, vpn, tb):
        probed = 0
        for set_idx in self.own_sets(vpn, tb):
            probed += 1
            if vpn in self.sets[set_idx]:
                self.sets[set_idx].move_to_end(vpn)
                self.hits += 1
                return True, self.sets[set_idx][vpn], probed
        self.misses += 1
        return False, None, max(probed, 1)

    def insert(self, vpn, ppn, tb):
        own = list(self.own_sets(vpn, tb))
        preferred = own[(vpn // self.granularity) % len(own)] if len(
            own
        ) > 1 else own[0]
        ordered = [preferred] + [s for s in own if s != preferred]
        for set_idx in ordered:
            if vpn in self.sets[set_idx]:
                self.sets[set_idx][vpn] = ppn
                self.sets[set_idx].move_to_end(vpn)
                return
        target = self.sets[ordered[0]]
        if len(target) >= ASSOC:
            target.popitem(last=False)
            self.evictions += 1
        target[vpn] = ppn

    def invalidate(self, vpn):
        for entry_set in self.sets:
            entry_set.pop(vpn, None)

    def flush(self):
        for entry_set in self.sets:
            entry_set.clear()

    def contents(self):
        return [sorted(s.items()) for s in self.sets]


def shared_sets(granularity):
    """Baseline VPN indexing: one home set per VPN group."""
    def own(vpn, tb):
        return ((vpn // granularity) % NUM_SETS,)
    return own


def partitioned_sets(occupancy):
    """TB-id tiling from the paper: TB i owns [i*S//T, (i+1)*S//T)."""
    def own(vpn, tb):
        if occupancy >= NUM_SETS:
            return (tb % NUM_SETS,)
        slot = tb % occupancy
        return range(
            (slot * NUM_SETS) // occupancy,
            ((slot + 1) * NUM_SETS) // occupancy,
        )
    return own


def make_shared(granularity=1):
    return SetAssociativeTLB(
        NUM_ENTRIES, ASSOC, 1.0,
        policy=VPNIndexPolicy(NUM_SETS, granularity=granularity),
    )


def make_partitioned(occupancy):
    return PartitionedL1TLB(
        NUM_ENTRIES, ASSOC, 1.0, sharing=None, occupancy=occupancy
    )


CASES = [
    pytest.param(lambda: make_shared(1), shared_sets(1), 1, id="shared-g1"),
    pytest.param(lambda: make_shared(4), shared_sets(4), 1, id="shared-g4"),
    pytest.param(lambda: make_shared(8), shared_sets(8), 1, id="shared-g8"),
    pytest.param(
        lambda: make_partitioned(1), partitioned_sets(1), 1, id="part-occ1"
    ),
    pytest.param(
        lambda: make_partitioned(3), partitioned_sets(3), 1, id="part-occ3"
    ),
    pytest.param(
        lambda: make_partitioned(16), partitioned_sets(16), 1, id="part-occ16"
    ),
    pytest.param(
        lambda: make_partitioned(40), partitioned_sets(40), 1,
        id="part-overcommit",
    ),
]


@pytest.mark.parametrize("make_tlb,own_sets,granularity", CASES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_ops_match_reference(make_tlb, own_sets, granularity, seed):
    rng = Random(seed)
    tlb = make_tlb()
    # the reference spreads inserts with the *policy's* granularity
    policy_granularity = getattr(tlb.policy, "granularity", 1)
    ref = ReferenceTLB(own_sets, granularity=policy_granularity)
    for step in range(5_000):
        roll = rng.random()
        if roll < 0.06:
            vpn = rng.randrange(300)
            tlb.invalidate(vpn)
            ref.invalidate(vpn)
            continue
        if roll < 0.065:
            tlb.flush()
            ref.flush()
            continue
        vpn = rng.randrange(300)
        tb = rng.randrange(48)
        got = tlb.probe(vpn, tb_id=tb)
        want_hit, want_ppn, want_probed = ref.probe(vpn, tb)
        assert (got.hit, got.ppn, got.sets_probed) == (
            want_hit, want_ppn, want_probed
        ), f"step {step}: probe(vpn={vpn}, tb={tb}) diverged"
        if not got.hit:
            ppn = rng.randrange(10_000)
            tlb.insert(vpn, ppn, tb_id=tb)
            ref.insert(vpn, ppn, tb)
        if step % 500 == 0:
            assert [
                sorted(s.items()) for s in tlb.sets
            ] == ref.contents(), f"step {step}: contents diverged"
    assert tlb.hits == ref.hits
    assert tlb.misses == ref.misses
    assert tlb.stats.counter_value("evictions") == ref.evictions
    assert [sorted(s.items()) for s in tlb.sets] == ref.contents()


@pytest.mark.parametrize("occupancy", [1, 3, 5, 16])
def test_reoccupancy_remaps_consistently(occupancy):
    """configure_occupancy mid-stream must keep probe/insert coherent:
    after remapping, a fresh insert is always found by a fresh probe."""
    tlb = make_partitioned(16)
    rng = Random(7)
    for vpn in range(64):
        tlb.insert(vpn, vpn, tb_id=rng.randrange(16))
    tlb.configure_occupancy(occupancy)
    for step in range(500):
        vpn = 1_000 + step
        tb = rng.randrange(32)
        tlb.insert(vpn, vpn * 3, tb_id=tb)
        result = tlb.probe(vpn, tb_id=tb)
        assert result.hit and result.ppn == vpn * 3
