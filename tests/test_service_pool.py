"""End-to-end tests for the crash-safe sweep service.

The centerpiece is the kill -9 test: a live ``repro serve`` process is
SIGKILLed mid-cell, restarted, and must recover — stale lease reclaimed,
journal replayed, and the finished sweep's results identical to a cold
run that was never killed.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.engine.errors import AdmissionError, JournalError
from repro.engine.faults import FaultPlan
from repro.engine.supervision import RetryPolicy
from repro.experiments.runner import ExperimentRunner
from repro.service import (
    DONE,
    FAILED,
    QUARANTINED,
    SUBMITTED,
    AdmissionPolicy,
    BreakerPolicy,
    Journal,
    SweepService,
    job_id_for,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("scale", "micro")
    kwargs.setdefault("seed", 0)
    service = SweepService(str(tmp_path / "svc"), **kwargs)
    service.recover()
    return service


# --------------------------------------------------------------------- #
# Happy path: service results == direct runner results
# --------------------------------------------------------------------- #


def test_service_results_match_direct_runner(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    service.submit("nw", "sched")
    service.run()
    service.close()

    runner = ExperimentRunner(scale="micro", seed=0)
    for config in ("baseline", "sched"):
        job = service.state.jobs[job_id_for("nw", config)]
        assert job.state == DONE
        direct = runner.run("nw", config)
        assert job.result["cycles"] == direct.cycles
        assert job.result["l1_tlb_hits"] == direct.l1_tlb_hits


def test_resubmit_is_idempotent_and_done_jobs_never_rerun(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    service.run()
    done_seq = service.state.jobs["nw:baseline"].updated_seq
    # resubmitting a known cell is a no-op returning the existing job
    job = service.submit("nw", "baseline")
    assert job.state == DONE
    service.run()
    service.close()
    assert service.state.jobs["nw:baseline"].updated_seq == done_seq
    assert service.state.counters["done"] == 1


def test_recovery_reproduces_live_state_exactly(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    service.submit("nw", "sched")
    service.run()
    service.close()

    recovered = SweepService(str(tmp_path / "svc"), scale="micro", seed=0)
    recovered.recover()
    recovered.close()
    assert recovered.state.counters == service.state.counters
    for job_id, job in service.state.jobs.items():
        clone = recovered.state.jobs[job_id]
        assert clone.state == job.state
        assert clone.result == job.result
    # breaker state replays to exactly the live machine
    assert {w: b.to_payload() for w, b in recovered.breakers.items()} == {
        w: b.to_payload() for w, b in service.breakers.items()
    }


def test_job_manifests_written(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    service.run()
    service.close()
    path = tmp_path / "svc" / "manifests" / "nw__baseline.manifest.json"
    payload = json.loads(path.read_text())
    assert payload["artifact_kind"] == "job"
    assert payload["extra"]["job_id"] == "nw:baseline"


# --------------------------------------------------------------------- #
# Stale-lease reclamation (in-process crash model)
# --------------------------------------------------------------------- #


def test_stale_lease_reclaimed_on_recovery(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    # die between journaling the start and the outcome: the journal
    # believes the job is RUNNING under a now-dead incarnation
    service._journal("lease", {"job_id": "nw:baseline",
                               "owner": "serve-999999", "unix": 1.0})
    service._journal("start", {"job_id": "nw:baseline"})
    service.close()

    recovered = SweepService(str(tmp_path / "svc"), scale="micro", seed=0)
    assert recovered.recover() == 1
    job = recovered.state.jobs["nw:baseline"]
    assert job.state == SUBMITTED
    assert job.owner == ""
    assert recovered.state.counters["reclaimed"] == 1
    # the reclaimed job runs to completion under the new incarnation
    recovered.run()
    recovered.close()
    assert recovered.state.jobs["nw:baseline"].state == DONE


def test_readonly_recovery_does_not_reclaim(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    service._journal("lease", {"job_id": "nw:baseline",
                               "owner": "serve-999999", "unix": 1.0})
    service.close()

    observer = SweepService(str(tmp_path / "svc"), scale="micro", seed=0)
    assert observer.recover(readonly=True) == 0
    assert observer.state.jobs["nw:baseline"].state == "LEASED"


# --------------------------------------------------------------------- #
# Admission + breakers end to end
# --------------------------------------------------------------------- #


def test_shed_is_journaled_and_survives_recovery(tmp_path):
    service = make_service(
        tmp_path,
        admission=AdmissionPolicy(max_depth=4, high_watermark=2,
                                  low_watermark=1),
    )
    service.submit("nw", "baseline")
    service.submit("nw", "sched")
    with pytest.raises(AdmissionError, match="load shed"):
        service.submit("nw", "partition_sharing")
    service.close()

    recovered = SweepService(str(tmp_path / "svc"), scale="micro", seed=0)
    recovered.recover()
    recovered.close()
    assert recovered.state.counters["shed"] == 1
    assert recovered.state.counters["queued"] == 2


def test_breaker_quarantines_repeat_offender(tmp_path):
    # nw crashes every attempt: the first job burns its retry budget
    # (3 attempt-level failures >= threshold), trips the breaker, and
    # the remaining nw jobs quarantine without running
    service = make_service(
        tmp_path,
        fault_plan=FaultPlan.parse("nw:baseline:crash:99"),
        retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        breaker_policy=BreakerPolicy(window=8, failure_threshold=3,
                                     cooldown=2),
    )
    for config in ("baseline", "sched", "partition_sharing"):
        service.submit("nw", config)
    service.run()
    service.close()

    jobs = service.state.jobs
    assert jobs["nw:baseline"].state == FAILED
    assert jobs["nw:sched"].state == QUARANTINED
    assert jobs["nw:sched"].marker == "FAILED(quarantined:worker_crash)"
    assert jobs["nw:partition_sharing"].state == QUARANTINED
    assert service.state.counters["quarantined"] == 2
    # only the failing job ever consumed worker attempts
    assert service.state.counters["leased"] == 1


def test_config_hash_drift_refused(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    service.state.jobs["nw:baseline"].config_hash = "deadbeef"
    with pytest.raises(JournalError, match="configuration changed"):
        service.run()
    service.close()


def test_second_live_server_refused(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    with open(service.pidfile, "w") as handle:
        handle.write("1\n")  # pid 1 is always alive
    with pytest.raises(JournalError, match="already"):
        service.run()
    service.close()


# --------------------------------------------------------------------- #
# Shutdown + compaction
# --------------------------------------------------------------------- #


def test_shutdown_compacts_and_recovery_continues(tmp_path):
    service = make_service(tmp_path, compact_after=5)
    service.submit("nw", "baseline")
    service.submit("nw", "sched")
    service.run()
    service.close()

    journal_path = tmp_path / "svc" / "journal.jsonl"
    lines = journal_path.read_text().splitlines()
    # compacted: header + snapshot only, regardless of history length
    assert len(lines) == 2
    assert json.loads(lines[1])["type"] == "snapshot"

    recovered = SweepService(str(tmp_path / "svc"), scale="micro", seed=0)
    recovered.recover()
    assert recovered.state.counters["done"] == 2
    # the compacted journal still accepts and serves new work
    recovered.submit("nw", "partition_sharing")
    recovered.run()
    recovered.close()
    assert recovered.state.jobs["nw:partition_sharing"].state == DONE


def test_service_manifest_written_at_shutdown(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    service.run()
    service.close()
    manifest = json.loads(
        (tmp_path / "svc" / "journal.jsonl.manifest.json").read_text()
    )
    assert manifest["artifact_kind"] == "service"
    assert manifest["extra"]["counters"]["done"] == 1


# --------------------------------------------------------------------- #
# kill -9 a live server mid-cell, restart, recover
# --------------------------------------------------------------------- #


def _wait_for_record(journal_path, rtype, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(journal_path):
            with open(journal_path, errors="replace") as handle:
                for line in handle:
                    try:
                        if json.loads(line).get("type") == rtype:
                            return True
                    except ValueError:
                        pass
        time.sleep(0.05)
    return False


@pytest.mark.slow
def test_kill9_recovery_matches_cold_run(tmp_path):
    service_dir = str(tmp_path / "svc")
    env = dict(
        os.environ,
        PYTHONPATH=os.path.join(REPO_ROOT, "src"),
        # the second cell's worker hangs forever: the serve process is
        # guaranteed to be mid-cell (RUNNING journaled, no outcome yet)
        # when the SIGKILL lands
        REPRO_FAULT="nw:sched:timeout",
    )
    submit = subprocess.run(
        [sys.executable, "-m", "repro", "submit", "nw",
         "--configs", "baseline", "sched",
         "--scale", "micro", "--service-dir", service_dir],
        env=env, capture_output=True, text=True,
    )
    assert submit.returncode == 0, submit.stderr
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--scale", "micro", "--service-dir", service_dir,
         "--timeout", "600"],
        env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        journal_path = os.path.join(service_dir, "journal.jsonl")
        assert _wait_for_record(journal_path, "done"), "first cell"
        assert _wait_for_record(journal_path, "start", timeout=60.0)
        time.sleep(0.3)  # let the hung worker actually start sleeping
    finally:
        # kill -9 the whole process group: the server AND its worker
        # die without any chance to journal, flush, or clean up
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait()

    # stale pidfile + journal ending mid-cell: restart must recover
    recovered = SweepService(service_dir, scale="micro", seed=0)
    assert recovered.recover() == 1
    assert recovered.state.jobs["nw:sched"].state == SUBMITTED
    recovered.run()  # no REPRO_FAULT in-process: the cell completes
    recovered.close()

    cold = SweepService(str(tmp_path / "cold"), scale="micro", seed=0)
    cold.recover()
    cold.submit("nw", "baseline")
    cold.submit("nw", "sched")
    cold.run()
    cold.close()

    for config in ("baseline", "sched"):
        job_id = job_id_for("nw", config)
        recovered_job = recovered.state.jobs[job_id]
        cold_job = cold.state.jobs[job_id]
        assert recovered_job.state == cold_job.state == DONE
        assert recovered_job.result == cold_job.result


@pytest.mark.slow
def test_kill9_torn_journal_tail_recovers(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    service.run()
    service.close()
    journal_path = tmp_path / "svc" / "journal.jsonl"
    with open(journal_path, "a") as handle:
        handle.write('{"seq": 999, "type": "lea')  # torn final append

    recovered = SweepService(str(tmp_path / "svc"), scale="micro", seed=0)
    recovered.recover()
    assert recovered.state.jobs["nw:baseline"].state == DONE
    # appending after the torn tail must not glue records to garbage
    recovered.submit("nw", "sched")
    recovered.close()
    reread = SweepService(str(tmp_path / "svc"), scale="micro", seed=0)
    reread.recover()
    reread.close()
    assert reread.state.jobs["nw:sched"].state == SUBMITTED


# --------------------------------------------------------------------- #
# Status / goldens
# --------------------------------------------------------------------- #


def test_status_lines_cover_queue_breakers_counters(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    service.run()
    service.close()
    text = "\n".join(service.status_lines())
    assert "done=1" in text
    assert "backpressure" in text
    assert "nw CLOSED" in text
    assert "queued=1" in text


def test_golden_gate_refuses_foreign_scale(tmp_path):
    service = make_service(tmp_path)
    goldens = tmp_path / "goldens.json"
    goldens.write_text(json.dumps(
        {"kind": "repro-goldens", "version": 1, "scale": "small",
         "seed": 0, "tolerance": 0.0, "cells": {}}
    ))
    passed, lines = service.golden_gate(str(goldens))
    service.close()
    assert not passed
    assert any("scale" in line for line in lines)


# --------------------------------------------------------------------- #
# Stale pidfile: dead or recycled owners are reclaimed, not refused
# --------------------------------------------------------------------- #


def test_stale_pidfile_dead_owner_reclaimed_on_startup(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    # a pidfile left by a SIGKILLed server whose pid no longer exists
    dead = subprocess.Popen([sys.executable, "-c", "pass"])
    dead.wait()
    with open(service.pidfile, "w") as handle:
        handle.write(f"{dead.pid} 12345\n")
    service.run()  # must reclaim the stale guard and serve, not refuse
    service.close()
    assert service.state.jobs["nw:baseline"].state == DONE
    assert not os.path.exists(service.pidfile)


def test_stale_pidfile_recycled_pid_reclaimed(tmp_path):
    from repro.service.pool import _proc_starttime

    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    # pid 1 is alive, but its start time cannot match this bogus one:
    # the recorded owner died and the kernel reused its pid
    real = _proc_starttime(1)
    bogus = "999999999" if real != "999999999" else "888888888"
    with open(service.pidfile, "w") as handle:
        handle.write(f"1 {bogus}\n")
    service.run()
    service.close()
    assert service.state.jobs["nw:baseline"].state == DONE


def test_unreadable_pidfile_reclaimed(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    with open(service.pidfile, "w") as handle:
        handle.write("not-a-pid\n")
    service.run()
    service.close()
    assert service.state.jobs["nw:baseline"].state == DONE


def test_live_pid_with_matching_starttime_still_refused(tmp_path):
    from repro.service.pool import _proc_starttime

    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    start = _proc_starttime(1)
    if not start:
        pytest.skip("no /proc starttime on this platform")
    with open(service.pidfile, "w") as handle:
        handle.write(f"1 {start}\n")
    with pytest.raises(JournalError, match="already"):
        service.run()
    service.close()


def test_pidfile_records_pid_and_starttime(tmp_path):
    from repro.service.pool import _proc_starttime

    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    seen = {}
    # spy inside the serve loop: run() removes the pidfile on exit
    original = service._run_job

    def spying_run_job(job):
        seen["content"] = open(service.pidfile).read().split()
        return original(job)

    service._run_job = spying_run_job
    service.run()
    service.close()
    pid, starttime = seen["content"]
    assert int(pid) == os.getpid()
    assert starttime == _proc_starttime(os.getpid())


# --------------------------------------------------------------------- #
# Compaction racing live traffic (satellite: seq gaps + replay identity)
# --------------------------------------------------------------------- #


def test_compact_refused_while_lease_outstanding(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    service.leases.grant("nw:baseline", "fake-owner")
    assert service.compact_now(force=True) is False
    service.leases.release("nw:baseline")
    assert service.compact_now(force=True) is True
    service.close()


def test_compaction_interleaved_with_submits_keeps_seq_monotonic(tmp_path):
    service = make_service(tmp_path)
    seqs = []

    def record_seq():
        seqs.append(service.journal.seq)

    service.submit("nw", "baseline")
    record_seq()
    assert service.compact_now(force=True) is True
    record_seq()
    # a submit that lands right after compaction must extend the log,
    # not restart numbering (a seq regression would desync replicas)
    service.submit("nw", "sched")
    record_seq()
    assert service.compact_now(force=True) is True
    record_seq()
    service.submit("nw", "partition_sharing")
    record_seq()
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)

    # replay after the interleaving reproduces the live state exactly
    recovered = SweepService(str(tmp_path / "svc"), scale="micro", seed=0)
    recovered.recover()
    recovered.close()
    assert set(recovered.state.jobs) == set(service.state.jobs)
    assert recovered.state.counters == service.state.counters
    assert recovered.state.by_key == service.state.by_key
    service.close()


def test_compaction_racing_heartbeats_never_corrupts(tmp_path):
    """A lease heartbeat between compaction attempts must never be lost
    or produce a journal the reducer refuses."""
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    service.submit("nw", "sched")
    # simulate the race: lease held (heartbeating) while compaction is
    # requested repeatedly — every attempt must refuse until release
    service.leases.grant("nw:baseline", service.incarnation)
    for _ in range(5):
        service.leases.heartbeat("nw:baseline")
        assert service.compact_now(force=True) is False
    service.leases.release("nw:baseline")
    assert service.compact_now(force=True) is True
    # post-compaction the queue still runs to completion and replays
    service.run()
    service.close()
    recovered = SweepService(str(tmp_path / "svc"), scale="micro", seed=0)
    recovered.recover()
    recovered.close()
    assert recovered.state.counters == service.state.counters
    for job_id, job in service.state.jobs.items():
        assert recovered.state.jobs[job_id].state == job.state


def test_replay_identical_after_compaction_mid_sweep(tmp_path):
    service = make_service(tmp_path, compact_after=1)
    service.submit("nw", "baseline")
    service.submit("nw", "sched")
    service.run()  # compacts at shutdown (compact_after=1)
    service.submit("nw", "partition_sharing")
    service.run()
    service.close()

    recovered = SweepService(str(tmp_path / "svc"), scale="micro", seed=0)
    recovered.recover()
    recovered.close()
    assert recovered.state.counters == service.state.counters
    assert recovered.state.by_key == service.state.by_key
    for job_id, job in service.state.jobs.items():
        clone = recovered.state.jobs[job_id]
        assert clone.state == job.state
        assert clone.result == job.result
        assert clone.idempotency_key == job.idempotency_key


# --------------------------------------------------------------------- #
# Idempotency keys at the pool layer
# --------------------------------------------------------------------- #


def test_submit_joins_existing_job_by_idempotency_key(tmp_path):
    service = make_service(tmp_path)
    first = service.submit("nw", "baseline")
    assert first.idempotency_key
    joined = service.submit(
        "nw", "baseline", idempotency_key=first.idempotency_key
    )
    assert joined.job_id == first.job_id
    assert service.state.counters["queued"] == 1
    service.close()


def test_done_job_writes_result_cache_entry(tmp_path):
    service = make_service(tmp_path)
    job = service.submit("nw", "baseline")
    service.run()
    service.close()
    entry = service.results.get(job.idempotency_key)
    assert entry is not None
    assert entry["job_id"] == "nw:baseline"
    assert entry["result"] == service.state.jobs["nw:baseline"].result


def test_status_lines_report_storage_health(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    service.run()
    service.close()
    storage_line = next(
        line for line in service.status_lines()
        if line.startswith("storage")
    )
    # journal bytes are real, the append counter tracks the log, and
    # the finished cell's result landed in the content-addressed cache
    assert "journal=0B" not in storage_line
    assert "records_since_compaction=" in storage_line
    assert "cached_results=1" in storage_line


def test_records_since_compaction_resets_on_snapshot(tmp_path):
    service = make_service(tmp_path)
    service.submit("nw", "baseline")
    before = service._records_since_snapshot
    assert before > 0
    assert service.compact_now(force=True)
    assert service._records_since_snapshot == 0
