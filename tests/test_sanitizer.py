"""Tests for the runtime invariant-checking subsystem (repro.sanitizer).

Coverage contract (ISSUE 3): every checker class has at least one
injected-fault test proving it detects its violation class with the
documented ``sanitizer:<tag>`` error class and exit code 9, a clean run
under ``strict`` reports zero violations on the paper's configuration
matrix, and the strict-mode wall-time overhead stays within budget.
"""

import json
import time

import pytest

from repro.engine.errors import (
    ConfigError,
    SanitizerError,
    SimulationError,
    error_from_class,
)
from repro.engine.supervision import CellSpec, RetryPolicy, simulate_cell
from repro.experiments.configs import get_config
from repro.sanitizer import (
    SANITIZE_ENV_VAR,
    SANITIZE_INJECT_ENV,
    LifecycleChecker,
    PartitionChecker,
    Sanitizer,
    normalize_mode,
)
from repro.telemetry import TelemetrySettings

MICRO = "micro"


def run_cell(
    benchmark="bfs",
    config="baseline",
    sanitize="strict",
    sample_every=None,
    seed=0,
):
    telemetry = None
    if sample_every is not None:
        telemetry = TelemetrySettings(sample_every=sample_every)
    return simulate_cell(
        CellSpec(
            benchmark=benchmark,
            config=get_config(config),
            config_tag=config,
            scale=MICRO,
            seed=seed,
            telemetry=telemetry,
            sanitize=sanitize,
        )
    )


class TestModeSelection:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, None), ("", None), ("0", None), ("off", None),
            ("none", None), ("false", None), ("1", "strict"),
            ("on", "strict"), ("true", "strict"), ("strict", "strict"),
            ("STRICT", "strict"), ("cheap", "cheap"),
        ],
    )
    def test_normalize(self, value, expected):
        assert normalize_mode(value) == expected

    def test_normalize_rejects_garbage(self):
        with pytest.raises(ConfigError):
            normalize_mode("paranoid")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV_VAR, raising=False)
        assert Sanitizer.from_env() is None
        monkeypatch.setenv(SANITIZE_ENV_VAR, "cheap")
        assert Sanitizer.from_env().mode == "cheap"

    def test_make_explicit_off_beats_env(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "strict")
        assert Sanitizer.make("off") is None
        assert Sanitizer.make(None).mode == "strict"
        assert Sanitizer.make("cheap").mode == "cheap"

    def test_sanitize_not_in_cell_key(self):
        base = CellSpec("bfs", get_config("baseline"), "baseline")
        sanitized = CellSpec(
            "bfs", get_config("baseline"), "baseline", sanitize="strict"
        )
        # memoized/checkpointed results stay valid with the flag on/off
        assert base.key == sanitized.key


class TestTaxonomy:
    def test_error_carries_tag_and_exit_code(self):
        exc = SanitizerError("sanitizer[x.y]: boom", tag="x.y")
        assert exc.exit_code == 9
        assert exc.error_class == "sanitizer:x.y"
        assert isinstance(exc, SimulationError)

    def test_error_from_class_round_trip(self):
        exc = error_from_class("sanitizer:tlb.overfill", "msg")
        assert isinstance(exc, SanitizerError)
        assert exc.exit_code == 9


class TestCleanRuns:
    """The paper's configuration matrix must sanitize clean (strict)."""

    @pytest.mark.parametrize(
        "config",
        ["baseline", "sched", "partition", "partition_sharing", "comp_ours",
         "dead_entry", "contiguity", "mosaic"],
    )
    def test_zero_violations(self, config, monkeypatch):
        monkeypatch.delenv(SANITIZE_INJECT_ENV, raising=False)
        from repro.system import build_gpu
        from repro.workloads import make_benchmark

        from repro.engine.simulator import Simulator

        san = Sanitizer("strict")
        sim = Simulator(sanitizer=san)
        gpu = build_gpu(get_config(config), sim=sim)
        result = gpu.run(make_benchmark("bfs", scale=MICRO, seed=0))
        assert result.tbs_completed > 0
        assert san.sweeps > 0, "sanitizer never swept — cadence broken"
        assert san.violations == 0

    def test_sanitized_result_identical_to_plain(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV_VAR, raising=False)
        monkeypatch.delenv(SANITIZE_INJECT_ENV, raising=False)
        plain = run_cell(config="partition_sharing", sanitize="off")
        strict = run_cell(config="partition_sharing", sanitize="strict")
        assert plain.to_dict() == strict.to_dict()


#: tags provable end-to-end through a real GPU run, with the config
#: (and sampler requirement) that exercises the guarded structure
E2E_TAGS = [
    ("queue.past_event", "baseline", None),
    ("queue.watcher_order", "baseline", 256),  # needs a live time watcher
    ("tlb.overfill", "baseline", None),
    ("tlb.misplaced", "baseline", None),
    ("tlb.duplicate", "baseline", None),
    ("tlb.stat_desync", "baseline", None),
    ("partition.bounds", "partition", None),
    ("sharing.flag_range", "partition_sharing", None),
    ("sharing.partner_adjacency", "partition_sharing", None),
    ("walk.conservation", "baseline", None),
    ("walk.outstanding", "baseline", None),
    ("tb.double_finish", "baseline", None),
    ("tb.resident_desync", "baseline", None),
    ("tb.leak", "baseline", None),
    ("warp.issue_after_retire", "baseline", None),
    ("sched.status_range", "sched", None),
    ("tlb.dead_bypass_live", "dead_entry", None),
    ("alloc.mosaic_overlap", "mosaic", None),
]


class TestInjectedViolationsEndToEnd:
    @pytest.mark.parametrize(
        "tag,config,sample_every", E2E_TAGS, ids=[t[0] for t in E2E_TAGS]
    )
    def test_injection_detected(self, tag, config, sample_every, monkeypatch):
        monkeypatch.setenv(SANITIZE_INJECT_ENV, tag)
        with pytest.raises(SanitizerError) as excinfo:
            run_cell(config=config, sanitize="strict",
                     sample_every=sample_every)
        assert excinfo.value.tag == tag
        assert excinfo.value.error_class == f"sanitizer:{tag}"
        assert excinfo.value.exit_code == 9

    def test_unknown_injection_tag_is_config_error(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_INJECT_ENV, "no.such.invariant")
        with pytest.raises(ConfigError, match="no.such.invariant"):
            run_cell()


class _Recorder:
    """Minimal sanitizer stand-in that records instead of raising."""

    def __init__(self):
        self.tags = []

    def violation(self, tag, message, context=None):
        self.tags.append(tag)
        raise SanitizerError(f"sanitizer[{tag}]: {message}", tag=tag)


class _FakeAlloc:
    def __init__(self, in_use):
        self.in_use = in_use


class _FakeSM:
    def __init__(self, sm_id=0, resident=(), in_use=None, pending=()):
        self.sm_id = sm_id
        self.resident = {hw: object() for hw in resident}
        self.tbid_alloc = _FakeAlloc(
            len(self.resident) if in_use is None else in_use
        )
        self._pending = {vpn: [] for vpn in pending}
        self.lifecycle = None


class TestLifecycleCheckerUnits:
    """Tags with no end-to-end corruption path: proven at checker level."""

    def make(self, *sms):
        recorder = _Recorder()
        checker = LifecycleChecker(list(sms)).bind(recorder)
        return checker, recorder

    def test_double_dispatch(self):
        checker, _ = self.make(_FakeSM())
        checker.on_dispatch(0, 3)
        with pytest.raises(SanitizerError) as excinfo:
            checker.on_dispatch(0, 3)
        assert excinfo.value.tag == "tb.double_dispatch"

    def test_orphan_issue(self):
        checker, _ = self.make(_FakeSM())

        class _TB:
            hw_tb_id = 5

        class _Warp:
            done = False
            warp_id = 0
            tb = _TB()

        with pytest.raises(SanitizerError) as excinfo:
            checker.on_issue(0, _Warp())
        assert excinfo.value.tag == "warp.orphan_issue"

    def test_allocator_desync(self):
        sm = _FakeSM(resident=(0, 1), in_use=3)
        checker, _ = self.make(sm)
        checker._ledger[0] = {0, 1}
        with pytest.raises(SanitizerError) as excinfo:
            checker.sweep(_Recorder(), None)
        assert excinfo.value.tag == "tb.allocator_desync"

    def test_stuck_translation(self):
        sm = _FakeSM(pending=(42,))
        checker, _ = self.make(sm)
        with pytest.raises(SanitizerError) as excinfo:
            checker.final(_Recorder(), None)
        assert excinfo.value.tag == "sm.stuck_translation"


class TestAllToAllSharingUnits:
    """All-to-all-only tags: no shipped config builds that register."""

    def make_tlb(self):
        from repro.core.partitioned_tlb import PartitionedL1TLB
        from repro.core.set_sharing import AllToAllSharingRegister

        tlb = PartitionedL1TLB(
            64, 4, 1.0, sharing=AllToAllSharingRegister(8), occupancy=4
        )
        return tlb, PartitionChecker(tlb)

    def test_self_partner(self):
        tlb, checker = self.make_tlb()
        checker.injectors["sharing.self_partner"]()
        with pytest.raises(SanitizerError) as excinfo:
            checker.sweep(_Recorder(), None)
        assert excinfo.value.tag == "sharing.self_partner"

    def test_flag_desync(self):
        tlb, checker = self.make_tlb()
        checker.injectors["sharing.flag_desync"]()
        with pytest.raises(SanitizerError) as excinfo:
            checker.sweep(_Recorder(), None)
        assert excinfo.value.tag == "sharing.flag_desync"

    def test_clean_all_to_all_sweeps_clean(self):
        tlb, checker = self.make_tlb()
        for vpn in range(200):
            if not tlb.probe(vpn, tb_id=vpn % 4).hit:
                tlb.insert(vpn, vpn, tb_id=vpn % 4)
        checker.sweep(_Recorder(), None)  # no raise


class TestDegradation:
    def test_fault_plan_sanitizer_kind_degrades(self):
        from repro.engine.faults import FaultKind, FaultPlan
        from repro.experiments.runner import ExperimentRunner

        plan = FaultPlan().add("bfs", "baseline", FaultKind.SANITIZER)
        runner = ExperimentRunner(
            scale=MICRO, seed=0, fault_plan=plan, strict=False,
            retry=RetryPolicy(max_attempts=1),
        )
        result = runner.run("bfs", "baseline")
        assert result.failure == "sanitizer:injected"
        failure = runner.failure_for("bfs", "baseline")
        assert failure.marker == "FAILED(sanitizer:injected)"

    def test_fault_plan_env_round_trip(self):
        from repro.engine.faults import FaultKind, FaultPlan

        plan = FaultPlan().add("bfs", "*", FaultKind.SANITIZER)
        assert FaultPlan.parse(plan.to_env()).specs == plan.specs


class TestCLI:
    def test_injected_violation_exits_9(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(SANITIZE_INJECT_ENV, "tlb.overfill")
        code = main(
            ["run", "bfs", "--scale", MICRO, "--sanitize"]
        )
        assert code == 9
        err = json.loads(capsys.readouterr().err.strip())
        assert err["error"] == "sanitizer:tlb.overfill"
        assert err["exit_code"] == 9

    def test_sanitize_off_overrides_env(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(SANITIZE_ENV_VAR, "strict")
        monkeypatch.setenv(SANITIZE_INJECT_ENV, "tlb.overfill")
        code = main(
            ["run", "bfs", "--scale", MICRO, "--sanitize", "off"]
        )
        assert code == 0
        assert "cycles" in capsys.readouterr().out


class TestOverhead:
    def test_strict_overhead_within_budget(self, monkeypatch):
        """Acceptance: strict sanitizing costs <= 35% wall time.

        Best-of-N timing to shave scheduler noise; the comparison is
        in-process on the same warmed interpreter.  The budget was 10%
        when both modes ran the same per-event drive loop; the batched
        fast path lowered the unsanitized denominator (sanitized runs
        legitimately keep per-event checks), and single-core CI boxes
        show ~±25% min-of-N jitter, so the budget covers real overhead
        plus timing noise rather than asserting a razor-thin margin.
        Interleaving the modes keeps slow background drift from landing
        entirely on one side of the ratio.
        """
        monkeypatch.delenv(SANITIZE_ENV_VAR, raising=False)
        monkeypatch.delenv(SANITIZE_INJECT_ENV, raising=False)

        def timed(sanitize):
            start = time.perf_counter()
            run_cell(config="partition_sharing", sanitize=sanitize)
            return time.perf_counter() - start

        run_cell(config="partition_sharing", sanitize="off")  # warm-up
        off_times, strict_times = [], []
        for _ in range(4):
            off_times.append(timed("off"))
            strict_times.append(timed("strict"))
        off = min(off_times)
        strict = min(strict_times)
        assert strict <= off * 1.35, (
            f"strict sanitizing cost {(strict / off - 1) * 100:.1f}% "
            f"(budget 35%): off={off:.3f}s strict={strict:.3f}s"
        )
