"""Integration tests for the per-SM data-memory path (MSHRs, timing)."""

from repro.engine.simulator import Simulator
from repro.memory.cache import Cache
from repro.memory.interconnect import Interconnect
from repro.memory.partition import PartitionedMemory
from repro.memory.subsystem import SMMemoryPath


def make_path(sim, l1_latency=1.0):
    l1 = Cache(16 * 1024, 4, 128)
    noc = Interconnect(1, traversal_latency=20.0)
    mem = PartitionedMemory(num_partitions=2)
    return SMMemoryPath(sim, 0, l1, noc, mem, l1_latency=l1_latency), l1


def test_l1_hit_is_fast():
    sim = Simulator()
    path, l1 = make_path(sim)
    l1.fill(0)
    times = []
    path.access(0, 0.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [1.0]


def test_l1_miss_goes_to_partition_and_fills():
    sim = Simulator()
    path, l1 = make_path(sim)
    times = []
    path.access(0, 0.0, lambda: times.append(sim.now))
    sim.run()
    # 1 (L1) + 20 (NoC) + 30 (L2 slice) + 220 DRAM + 20 back, roughly.
    assert times[0] > 200.0
    assert l1.contains(0)


def test_second_access_after_fill_hits():
    sim = Simulator()
    path, _l1 = make_path(sim)
    times = []
    path.access(0, 0.0, lambda: times.append(sim.now))
    sim.run()
    path.access(0, sim.now, lambda: times.append(sim.now))
    sim.run()
    assert times[1] - times[0] == 1.0


def test_mshr_merges_same_line():
    sim = Simulator()
    path, _l1 = make_path(sim)
    done = []
    path.access(0, 0.0, lambda: done.append("a"))
    path.access(64, 0.0, lambda: done.append("b"))  # same 128B line
    sim.run()
    assert sorted(done) == ["a", "b"]
    assert path.stats.counter("mshr_merged").value == 1
    # Only one partition request was made.
    total_requests = sum(
        p.dram.requests for p in path.partitions.partitions
    )
    assert total_requests == 1


def test_different_lines_not_merged():
    sim = Simulator()
    path, _l1 = make_path(sim)
    done = []
    path.access(0, 0.0, lambda: done.append(1))
    path.access(128, 0.0, lambda: done.append(2))
    sim.run()
    assert len(done) == 2
    assert path.stats.counter("mshr_merged").value == 0


def test_writes_mark_lines_dirty():
    sim = Simulator()
    path, l1 = make_path(sim)
    path.access(0, 0.0, lambda: None, is_write=True)
    sim.run()
    # Fill enough conflicting lines to evict the dirty one.
    set_stride = l1.num_sets * l1.line_bytes
    for i in range(1, 6):
        path.access(i * set_stride, sim.now, lambda: None)
        sim.run()
    assert l1.stats.counter("writebacks").value >= 1
