"""Tests for the turn-key system assembly (repro.system)."""

import pytest

from repro import BASELINE_CONFIG, L1TLBMode, build_gpu
from repro.core.partitioned_tlb import (
    CompressedPartitionedL1TLB,
    PartitionedL1TLB,
)
from repro.core.factory import build_l1_tlb, build_sharing_register
from repro.core.set_sharing import (
    AllToAllSharingRegister,
    CounterSharingRegister,
    SharingRegister,
)
from repro.arch.config import SharingPolicyKind
from repro.translation.address import PAGE_2M
from repro.translation.compression import CompressedTLB
from repro.translation.tlb import SetAssociativeTLB


class TestFactory:
    def test_baseline_tlb(self):
        tlb = build_l1_tlb(BASELINE_CONFIG)
        assert type(tlb) is SetAssociativeTLB
        assert tlb.num_entries == 64

    def test_partitioned_tlb(self):
        cfg = BASELINE_CONFIG.replace(l1_tlb_mode=L1TLBMode.PARTITIONED)
        tlb = build_l1_tlb(cfg)
        assert type(tlb) is PartitionedL1TLB
        assert tlb.sharing is None

    def test_partitioned_sharing_tlb(self):
        cfg = BASELINE_CONFIG.replace(
            l1_tlb_mode=L1TLBMode.PARTITIONED_SHARING
        )
        tlb = build_l1_tlb(cfg)
        assert isinstance(tlb.sharing, SharingRegister)

    def test_compressed_variants(self):
        cfg = BASELINE_CONFIG.replace(l1_tlb_compression=True)
        assert type(build_l1_tlb(cfg)) is CompressedTLB
        cfg2 = cfg.replace(l1_tlb_mode=L1TLBMode.PARTITIONED_SHARING)
        tlb = build_l1_tlb(cfg2)
        assert type(tlb) is CompressedPartitionedL1TLB
        assert tlb.sharing is not None

    def test_sharing_register_variants(self):
        for kind, cls in [
            (SharingPolicyKind.ONE_BIT, SharingRegister),
            (SharingPolicyKind.COUNTER, CounterSharingRegister),
            (SharingPolicyKind.ALL_TO_ALL, AllToAllSharingRegister),
        ]:
            cfg = BASELINE_CONFIG.replace(sharing_policy=kind)
            assert type(build_sharing_register(cfg)) is cls


class TestBuildGPU:
    def test_structure_matches_config(self):
        gpu = build_gpu(BASELINE_CONFIG)
        assert len(gpu.sms) == 16
        assert gpu.l2_tlb.num_entries == 512
        assert gpu.walkers.num_walkers == 8
        assert gpu.partitions.num_partitions == 12

    def test_each_sm_gets_private_structures(self):
        gpu = build_gpu(BASELINE_CONFIG)
        tlbs = {id(sm.l1_tlb) for sm in gpu.sms}
        caches = {id(sm.memory.l1) for sm in gpu.sms}
        assert len(tlbs) == 16
        assert len(caches) == 16

    def test_shared_structures_are_shared(self):
        gpu = build_gpu(BASELINE_CONFIG)
        services = {id(sm.translation) for sm in gpu.sms}
        assert len(services) == 1

    def test_huge_page_geometry_propagates(self):
        gpu = build_gpu(BASELINE_CONFIG.replace(page_size=PAGE_2M))
        assert gpu.geometry.page_size == PAGE_2M
        assert gpu.walkers.uvm.geometry.page_size == PAGE_2M

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            BASELINE_CONFIG.replace(l1_tlb_entries=63)
        with pytest.raises(ValueError):
            BASELINE_CONFIG.replace(num_sms=0)
