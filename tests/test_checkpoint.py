"""Tests for the versioned checkpoint store and runner resume path."""

import json

import pytest

from repro.arch.gpu import RunResult
from repro.engine.checkpoint import CHECKPOINT_VERSION, CheckpointStore
from repro.engine.errors import CheckpointError
from repro.engine.faults import corrupt_file
from repro.experiments.runner import ExperimentRunner


def make_result(name="bfs", cycles=123.0, traces=None):
    return RunResult(
        kernel_name=name,
        cycles=cycles,
        per_sm_l1_tlb_hit_rate=[0.5, 0.75],
        l1_tlb_hits=10,
        l1_tlb_accesses=20,
        l2_tlb_hits=5,
        l2_tlb_accesses=10,
        walks=5,
        far_faults=0,
        l1_cache_hit_rate=0.4,
        tbs_completed=4,
        stats={"tlb": {"hits": 10}},
        tlb_traces=traces,
    )


class TestRunResultSerialization:
    def test_round_trip(self):
        result = make_result(traces=[[(0, 1.0, True)], [(4096, 2.0, False)]])
        back = RunResult.from_dict(result.to_dict())
        assert back == result
        assert back.tlb_traces[0][0] == (0, 1.0, True)

    def test_round_trip_through_json(self):
        result = make_result(traces=[[(0, 1.0, True)]])
        back = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.cycles == result.cycles
        assert back.tlb_traces == result.tlb_traces

    def test_from_dict_rejects_unknown_fields(self):
        payload = make_result().to_dict()
        payload["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            RunResult.from_dict(payload)

    def test_from_dict_rejects_missing_fields(self):
        payload = make_result().to_dict()
        del payload["cycles"]
        with pytest.raises(ValueError, match="cycles"):
            RunResult.from_dict(payload)

    def test_make_failed_placeholder(self):
        failed = RunResult.make_failed("bfs", "livelock")
        assert not failed.ok
        assert failed.failure == "livelock"
        assert failed.cycles != failed.cycles  # NaN
        assert failed.avg_l1_tlb_hit_rate != failed.avg_l1_tlb_hit_rate


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = CheckpointStore(path, scale="micro", seed=0)
        key = ("bfs", "baseline", False, None)
        store.append(key, make_result().to_dict())
        store.append(("nw", "sched", False, None), make_result("nw").to_dict())
        store.close()

        loaded = CheckpointStore(path, scale="micro", seed=0).load()
        assert set(loaded) == {key, ("nw", "sched", False, None)}
        assert RunResult.from_dict(loaded[key]) == make_result()

    def test_load_missing_file_is_empty(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "nope.jsonl"))
        assert store.load() == {}

    def test_torn_final_line_dropped(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = CheckpointStore(path, scale="micro", seed=0)
        store.append(("bfs", "baseline", False, None), make_result().to_dict())
        store.append(("nw", "sched", False, None), make_result("nw").to_dict())
        store.close()
        with open(path, "rb") as handle:
            data = handle.read()
        # SIGKILL mid-append: the final record is half-written
        with open(path, "wb") as handle:
            handle.write(data[: len(data) - len(data.splitlines()[-1]) // 2 - 1])
        loaded = CheckpointStore(path, scale="micro", seed=0).load()
        assert set(loaded) == {("bfs", "baseline", False, None)}

    def test_corrupt_middle_record_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = CheckpointStore(path, scale="micro", seed=0)
        store.append(("bfs", "baseline", False, None), make_result().to_dict())
        store.append(("nw", "sched", False, None), make_result("nw").to_dict())
        store.close()
        corrupt_file(path)  # deterministic mid-file byte flip
        with pytest.raises(CheckpointError):
            CheckpointStore(path, scale="micro", seed=0).load()

    def test_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = CheckpointStore(path, scale="micro", seed=0)
        store.append(("bfs", "baseline", False, None), make_result().to_dict())
        store.close()
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        header["version"] = CHECKPOINT_VERSION + 1
        lines[0] = json.dumps(header)
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="version"):
            CheckpointStore(path, scale="micro", seed=0).load()

    def test_foreign_file_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        open(path, "w").write('{"some": "other file"}\n')
        with pytest.raises(CheckpointError):
            CheckpointStore(path).load()

    def test_scale_and_seed_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = CheckpointStore(path, scale="micro", seed=0)
        store.append(("bfs", "baseline", False, None), make_result().to_dict())
        store.close()
        with pytest.raises(CheckpointError, match="scale"):
            CheckpointStore(path, scale="small", seed=0).load()
        with pytest.raises(CheckpointError, match="seed"):
            CheckpointStore(path, scale="micro", seed=7).load()

    def test_crc_detects_tampered_result(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = CheckpointStore(path, scale="micro", seed=0)
        store.append(("bfs", "baseline", False, None), make_result().to_dict())
        store.append(("nw", "sched", False, None), make_result("nw").to_dict())
        store.close()
        lines = open(path).read().splitlines()
        record = json.loads(lines[1])
        record["result"]["cycles"] = 1.0  # tamper without updating crc
        lines[1] = json.dumps(record)
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="checksum"):
            CheckpointStore(path, scale="micro", seed=0).load()

    def test_discard_removes_file(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = CheckpointStore(path)
        store.append(("k",), make_result().to_dict())
        store.discard()
        assert not store.exists()


class TestRunnerResume:
    def test_resume_skips_resimulation(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        first = ExperimentRunner(
            scale="micro", benchmarks=("nw",), checkpoint_path=path
        )
        result = first.run("nw", "baseline")
        assert first.cells_simulated == 1
        first.close()

        second = ExperimentRunner(
            scale="micro", benchmarks=("nw",), checkpoint_path=path,
            resume=True,
        )
        assert second.cells_restored == 1
        restored = second.run("nw", "baseline")
        assert second.cells_simulated == 0  # no re-simulation
        assert restored == result
        second.close()

    def test_fresh_run_discards_stale_checkpoint(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        first = ExperimentRunner(
            scale="micro", benchmarks=("nw",), checkpoint_path=path
        )
        first.run("nw", "baseline")
        first.close()

        second = ExperimentRunner(
            scale="micro", benchmarks=("nw",), checkpoint_path=path,
            resume=False,
        )
        assert second.cells_restored == 0
        second.run("nw", "baseline")
        assert second.cells_simulated == 1
        second.close()

    def test_resume_rejects_other_sweeps_checkpoint(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        first = ExperimentRunner(
            scale="micro", benchmarks=("nw",), checkpoint_path=path
        )
        first.run("nw", "baseline")
        first.close()
        with pytest.raises(CheckpointError):
            ExperimentRunner(
                scale="micro", seed=3, benchmarks=("nw",),
                checkpoint_path=path, resume=True,
            )


class TestResumeManifestValidation:
    """Satellite (ISSUE 3): --resume cross-validates the RunManifest.

    The checkpoint header pins scale/seed; the manifest sidecar
    additionally pins a hash per simulated config, so resuming after a
    config edit is refused instead of silently mixing results.
    """

    def produce(self, tmp_path, seed=0):
        path = str(tmp_path / "sweep.jsonl")
        runner = ExperimentRunner(
            scale="micro", seed=seed, benchmarks=("nw",),
            checkpoint_path=path,
        )
        runner.run("nw", "baseline")
        runner.close()  # writes <path>.manifest.json
        return path

    def test_manifest_written_next_to_checkpoint(self, tmp_path):
        path = self.produce(tmp_path)
        manifest = json.load(open(path + ".manifest.json"))
        assert manifest["kind"] == "repro-manifest"
        assert "baseline" in manifest["config_hashes"]

    def test_happy_resume_passes_validation(self, tmp_path):
        path = self.produce(tmp_path)
        runner = ExperimentRunner(
            scale="micro", benchmarks=("nw",), checkpoint_path=path,
            resume=True,
        )
        runner.run("nw", "baseline")
        assert runner.cells_restored == 1
        assert runner.cells_simulated == 0

    def test_seed_mismatch_refused_via_manifest(self, tmp_path):
        path = self.produce(tmp_path, seed=1)
        # remove the header guard's input by keeping the store's seed but
        # changing the invocation: the manifest check must fire first
        with pytest.raises(CheckpointError, match="seed"):
            ExperimentRunner(
                scale="micro", seed=2, benchmarks=("nw",),
                checkpoint_path=path, resume=True,
            )

    def test_config_drift_refused(self, tmp_path):
        import dataclasses

        from repro.experiments.configs import get_config

        path = self.produce(tmp_path)
        runner = ExperimentRunner(
            scale="micro", benchmarks=("nw",), checkpoint_path=path,
            resume=True,
        )
        edited = dataclasses.replace(
            get_config("baseline"), l2_tlb_entries=128
        )
        with pytest.raises(CheckpointError, match="baseline"):
            runner.run_config("nw", edited, "baseline")

    def test_unknown_tag_not_blocked(self, tmp_path):
        """Configs the producing run never simulated are fair game."""
        path = self.produce(tmp_path)
        runner = ExperimentRunner(
            scale="micro", benchmarks=("nw",), checkpoint_path=path,
            resume=True,
        )
        result = runner.run("nw", "sched")  # not in the manifest
        assert result.ok

    def test_missing_manifest_tolerated(self, tmp_path):
        """Pre-manifest / interrupted checkpoints still resume (the
        header checks continue to apply)."""
        import os

        path = self.produce(tmp_path)
        os.remove(path + ".manifest.json")
        runner = ExperimentRunner(
            scale="micro", benchmarks=("nw",), checkpoint_path=path,
            resume=True,
        )
        assert runner.cells_restored == 1

    def test_unreadable_manifest_refused(self, tmp_path):
        path = self.produce(tmp_path)
        with open(path + ".manifest.json", "w") as handle:
            handle.write('{"kind": "not-a-manifest"}')
        with pytest.raises(CheckpointError, match="manifest"):
            ExperimentRunner(
                scale="micro", benchmarks=("nw",), checkpoint_path=path,
                resume=True,
            )
