"""Unit tests for walkers and the shared translation service."""

from repro.engine.simulator import Simulator
from repro.translation.service import SharedTranslationService
from repro.translation.tlb import SetAssociativeTLB
from repro.translation.uvm import UVMManager
from repro.translation.walker import WalkerPool


def make_service(sim, walkers=8, walk_latency=500.0, port_interval=1.0):
    uvm = UVMManager()
    pool = WalkerPool(uvm, num_walkers=walkers, walk_latency=walk_latency)
    l2 = SetAssociativeTLB(512, 16, 10.0)
    return SharedTranslationService(sim, l2, pool, port_interval=port_interval), l2, pool


def test_l2_miss_walks_then_l2_hit():
    sim = Simulator()
    service, l2, _pool = make_service(sim)
    results = []
    service.translate(42, 0.0, lambda ppn, lvl: results.append((sim.now, ppn, lvl)))
    sim.run()
    t_walk, ppn, level = results[0]
    assert level == "walk"
    assert t_walk >= 510.0  # lookup + walk
    # Second request: L2 TLB hit at lookup latency only.
    service.translate(42, sim.now, lambda ppn, lvl: results.append((sim.now, ppn, lvl)))
    start = t_walk
    sim.run()
    t_hit, ppn2, level2 = results[1]
    assert level2 == "l2"
    assert ppn2 == ppn
    assert t_hit - start <= 15.0


def test_concurrent_misses_to_same_page_merge():
    sim = Simulator()
    service, _l2, pool = make_service(sim)
    results = []
    for _ in range(5):
        service.translate(7, 0.0, lambda ppn, lvl: results.append(lvl))
    sim.run()
    assert len(results) == 5
    assert pool.stats.counter("walks").value == 1
    assert service.stats.counter("merged_misses").value == 4


def test_walker_pool_queues_beyond_capacity():
    sim = Simulator()
    service, _l2, _pool = make_service(sim, walkers=2, walk_latency=100.0)
    done_times = []
    for vpn in range(4):
        service.translate(vpn, 0.0, lambda ppn, lvl: done_times.append(sim.now))
    sim.run()
    done_times.sort()
    # Two walks run immediately; the next two wait for free walkers.
    assert done_times[1] < done_times[2]
    assert done_times[2] >= done_times[0] + 100.0


def test_l2_port_serializes_lookups():
    sim = Simulator()
    service, _l2, _pool = make_service(sim, port_interval=4.0)
    done = []
    for vpn in range(3):
        service.translate(vpn, 0.0, lambda ppn, lvl: done.append(sim.now))
    sim.run()
    done.sort()
    # Port grants at 0, 4, 8 -> completions at least 4 apart.
    assert done[1] >= done[0] + 4.0 - 1e-9
    assert done[2] >= done[1] + 4.0 - 1e-9


def test_far_fault_adds_latency():
    sim = Simulator()
    uvm = UVMManager(far_fault_latency=2000.0)
    pool = WalkerPool(uvm, num_walkers=8, walk_latency=500.0)
    l2 = SetAssociativeTLB(512, 16, 10.0)
    service = SharedTranslationService(sim, l2, pool)
    times = []
    service.translate(1, 0.0, lambda ppn, lvl: times.append(sim.now))
    sim.run()
    assert times[0] >= 2510.0
    assert pool.stats.counter("far_faults").value == 1
