"""End-to-end degradation: a report survives injected cell failures."""

from repro.engine.faults import FaultKind, FaultPlan
from repro.experiments import fig2, fig11, report
from repro.experiments.runner import ExperimentRunner, failed_rows


def degraded_runner(kind=FaultKind.LIVELOCK, benchmarks=("bfs", "nw")):
    plan = FaultPlan().add("bfs", "*", kind)
    return ExperimentRunner(
        scale="micro", benchmarks=benchmarks, fault_plan=plan, strict=False
    )


class TestFigureDegradation:
    def test_fig2_marks_failed_cell(self):
        runner = degraded_runner()
        result = fig2.run(runner)
        table = result.format_table()
        assert "FAILED(livelock)" in table
        assert "nw" in table  # the healthy benchmark still reports
        assert result.failures == {"bfs": "livelock"}

    def test_fig11_geomean_skips_failed_cell(self):
        runner = degraded_runner()
        result = fig11.run(runner)
        assert "bfs" in result.failures
        # normalized times only exist for surviving benchmarks ...
        assert "bfs" not in result.sharing
        assert "nw" in result.sharing
        # ... and the table still renders with the failure marked
        assert "FAILED(livelock)" in result.format_table()

    def test_failed_rows_formatting(self):
        rows = failed_rows({"bfs": "timeout", "nw": "worker_crash"})
        assert rows == [
            "bfs        FAILED(timeout)",
            "nw         FAILED(worker_crash)",
        ]


class TestFullReportDegradation:
    def test_report_completes_with_injected_livelock(self):
        plan = FaultPlan().add("bfs", "*", FaultKind.LIVELOCK)
        reports, runner = report.run_all(
            scale="micro",
            benchmarks=("bfs", "nw"),
            fault_plan=plan,
            strict=False,
        )
        # every experiment produced a section despite the dead benchmark
        assert len(reports) == 19
        assert all(r.table for r in reports)
        rendered = report.render_markdown(reports, "micro", runner)
        assert "FAILED(livelock)" in rendered
        assert "Degraded run" in rendered
        assert runner.failures  # per-cell records survive for inspection

    def test_clean_report_has_no_degradation_banner(self):
        reports, runner = report.run_all(scale="micro", benchmarks=("nw",))
        rendered = report.render_markdown(reports, "micro", runner)
        assert "Degraded run" not in rendered
        assert report.degradation_summary(reports, runner) == []
