"""Regression tests for SharingRegister finish/reset lifecycle paths.

Satellite audit (ISSUE 3): a finished TB must leave no stale sharing
state behind — neither its own flag, nor a partner still pointing at it
(asymmetric teardown).  The audit found the shipped registers sound:

* the 1-bit register clears both the finisher's flag and the
  predecessor's flag (the only TB whose sharing indexes the finisher's
  sets), including at the occupancy wrap-around;
* the counter variant additionally resets both saturating counters;
* the all-to-all variant removes the finisher from *every* partner set
  and drops derived flags that lose their last partner.

These tests pin that behaviour so a future refactor cannot silently
reintroduce dangling-partner bugs, and a randomized sweep asserts the
sanitizer's sharing invariants after arbitrary spill/finish sequences.
"""

from random import Random

import pytest

from repro.core.partitioned_tlb import PartitionedL1TLB
from repro.core.set_sharing import (
    AllToAllSharingRegister,
    CounterSharingRegister,
    SharingRegister,
)

REGISTERS = [
    pytest.param(lambda: SharingRegister(8), id="one-bit"),
    pytest.param(lambda: CounterSharingRegister(8, threshold=1), id="counter"),
    pytest.param(lambda: AllToAllSharingRegister(8), id="all-to-all"),
]


class TestFinishTeardown:
    @pytest.mark.parametrize("make", REGISTERS)
    def test_own_flag_clears_on_finish(self, make):
        sharing = make()
        sharing.configure_occupancy(4)
        sharing.record_spill(2)
        assert sharing.is_sharing(2)
        sharing.on_tb_finished(2)
        assert not sharing.is_sharing(2)
        assert sharing.partners(2) == []

    @pytest.mark.parametrize("make", REGISTERS)
    def test_predecessor_flag_clears_when_target_finishes(self, make):
        """TB 1 spills into TB 2's sets; TB 2 finishing frees those sets,
        so TB 1's sharing must reset (it indexes the finished TB)."""
        sharing = make()
        sharing.configure_occupancy(4)
        sharing.record_spill(1)  # partner is neighbor(1) == 2
        assert sharing.is_sharing(1)
        sharing.on_tb_finished(2)
        assert not sharing.is_sharing(1)
        assert sharing.partners(1) == []

    @pytest.mark.parametrize("make", REGISTERS)
    def test_wraparound_finish(self, make):
        """The last slot's neighbour is slot 0: TB occ-1 shares into TB
        0's sets, and TB 0 finishing must clear it."""
        sharing = make()
        sharing.configure_occupancy(4)
        sharing.record_spill(3)  # neighbor(3) == 0
        sharing.on_tb_finished(0)
        assert not sharing.is_sharing(3)

    @pytest.mark.parametrize("make", REGISTERS)
    def test_unrelated_flags_survive_finish(self, make):
        sharing = make()
        sharing.configure_occupancy(6)
        sharing.record_spill(0)  # 0 -> 1
        sharing.record_spill(3)  # 3 -> 4
        sharing.on_tb_finished(4)  # clears 3's flag (and 4's), not 0's
        assert sharing.is_sharing(0)
        assert not sharing.is_sharing(3)

    @pytest.mark.parametrize("make", REGISTERS)
    def test_configure_occupancy_resets_everything(self, make):
        sharing = make()
        sharing.configure_occupancy(4)
        sharing.record_spill(0)
        sharing.configure_occupancy(2)
        assert all(
            not sharing.is_sharing(tb) for tb in range(sharing.capacity)
        )
        assert all(
            sharing.partners(tb) == [] for tb in range(sharing.capacity)
        )


class TestCounterRegister:
    def test_threshold_gates_flag(self):
        sharing = CounterSharingRegister(8, threshold=3)
        sharing.configure_occupancy(4)
        sharing.record_spill(0)
        sharing.record_spill(0)
        assert not sharing.is_sharing(0)
        sharing.record_spill(0)
        assert sharing.is_sharing(0)

    def test_finish_resets_counters_not_just_flags(self):
        sharing = CounterSharingRegister(8, threshold=2)
        sharing.configure_occupancy(4)
        sharing.record_spill(0)
        sharing.on_tb_finished(0)
        # a fresh TB in the slot must need the full threshold again
        sharing.record_spill(0)
        assert not sharing.is_sharing(0)
        sharing.record_spill(0)
        assert sharing.is_sharing(0)


class TestAllToAllTeardown:
    def test_no_dangling_partner_after_target_finishes(self):
        sharing = AllToAllSharingRegister(8)
        sharing.configure_occupancy(6)
        sharing.record_spill_to(0, 3)
        sharing.record_spill_to(5, 3)
        sharing.on_tb_finished(3)
        # nobody may still point at the finished TB (asymmetric teardown)
        for tb in range(sharing.capacity):
            assert 3 not in sharing.partners(tb)
        assert not sharing.is_sharing(0)
        assert not sharing.is_sharing(5)

    def test_surviving_partners_keep_flag(self):
        sharing = AllToAllSharingRegister(8)
        sharing.configure_occupancy(6)
        sharing.record_spill_to(0, 3)
        sharing.record_spill_to(0, 4)
        sharing.on_tb_finished(3)
        assert sharing.is_sharing(0)
        assert sharing.partners(0) == [4]

    def test_finisher_partner_list_cleared(self):
        sharing = AllToAllSharingRegister(8)
        sharing.configure_occupancy(6)
        sharing.record_spill_to(2, 5)
        sharing.on_tb_finished(2)
        assert sharing.partners(2) == []
        assert not sharing.is_sharing(2)


class TestPartitionedTLBFinishPath:
    def test_tb_finish_resets_flags_but_keeps_entries(self):
        sharing = SharingRegister(4)
        tlb = PartitionedL1TLB(
            32, 2, 1.0, sharing=sharing, occupancy=4
        )
        # fill TB 0's sets past capacity so an eviction spills to TB 1
        spilled = False
        for vpn in range(64):
            tlb.insert(vpn, vpn, tb_id=0)
            if sharing.is_sharing(0):
                spilled = True
                break
        assert spilled, "never spilled — sharing path not exercised"
        occupancy_before = tlb.occupancy
        tlb.on_tb_finished(1)  # TB 1's sets hosted the spill
        assert not sharing.is_sharing(0)
        # entries are never flushed on finish (ids recycle; reuse stays)
        assert tlb.occupancy == occupancy_before

    def test_spill_targets_only_adjacent_sets(self):
        sharing = SharingRegister(4)
        tlb = PartitionedL1TLB(32, 2, 1.0, sharing=sharing, occupancy=4)
        own = {s for tb in (0, 1) for s in tlb.policy.sets_for(tb)}
        for vpn in range(200):
            tlb.insert(vpn, vpn, tb_id=0)
        # everything TB 0 inserted lives in its own or its neighbour's sets
        for set_idx, entry_set in enumerate(tlb.sets):
            if entry_set:
                assert set_idx in own


class TestRandomizedLifecycleInvariants:
    """Arbitrary spill/finish interleavings never violate the sanitizer's
    sharing invariants (the machine-checked form of the audit)."""

    @pytest.mark.parametrize("make", REGISTERS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_invariants_hold(self, make, seed):
        rng = Random(seed)
        sharing = make()
        occupancy = rng.randrange(2, sharing.capacity + 1)
        sharing.configure_occupancy(occupancy)
        for _ in range(2_000):
            tb = rng.randrange(occupancy)
            if rng.random() < 0.6:
                sharing.record_spill(tb)
            else:
                sharing.on_tb_finished(tb)
            for probe_tb in range(sharing.capacity):
                partners = sharing.partners(probe_tb)
                if sharing.is_sharing(probe_tb):
                    assert probe_tb < occupancy
                assert probe_tb not in partners
                for partner in partners:
                    assert 0 <= partner < occupancy
                if isinstance(sharing, AllToAllSharingRegister):
                    assert sharing.is_sharing(probe_tb) == bool(partners)
                elif sharing.is_sharing(probe_tb):
                    assert partners == [sharing.neighbor(probe_tb)]
