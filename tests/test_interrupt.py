"""Tests for two-stage SIGINT/SIGTERM handling (graceful drain)."""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.engine.errors import InterruptedRunError
from repro.engine.interrupt import GracefulInterrupt

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def self_signal(signum=signal.SIGTERM):
    os.kill(os.getpid(), signum)


# --------------------------------------------------------------------- #
# In-process unit tests
# --------------------------------------------------------------------- #


def test_first_signal_raises_in_raising_mode():
    with pytest.raises(InterruptedRunError, match="SIGTERM"):
        with GracefulInterrupt() as interrupt:
            self_signal()
    assert interrupt.requested
    assert interrupt.signum == signal.SIGTERM


def test_non_raising_mode_sets_flag_only():
    with GracefulInterrupt(raising=False) as interrupt:
        self_signal()
        assert interrupt.requested
        with pytest.raises(InterruptedRunError):
            interrupt.check()


def test_duplicate_burst_is_one_delivery():
    # senders like GNU timeout signal the process group AND the pid;
    # the duplicate must not escalate a drain into a hard exit (which
    # would kill this very test process)
    with GracefulInterrupt(raising=False) as interrupt:
        self_signal()
        self_signal()
    assert interrupt.requested


def test_shield_defers_the_raise():
    flushed = False
    with pytest.raises(InterruptedRunError):
        with GracefulInterrupt() as interrupt:
            with interrupt.shield():
                self_signal()
                # still alive inside the shield: the flush completes
                flushed = True
    assert flushed


def test_previous_handlers_restored_on_exit():
    before = signal.getsignal(signal.SIGTERM)
    with GracefulInterrupt(raising=False):
        assert signal.getsignal(signal.SIGTERM) != before
    assert signal.getsignal(signal.SIGTERM) == before


# --------------------------------------------------------------------- #
# Subprocess tests (hard-exit paths cannot run in-process)
# --------------------------------------------------------------------- #


def run_script(body, send, delay=0.5, gap=0.0, count=1):
    """Run a python script, signal it, return CompletedProcess."""
    proc = subprocess.Popen(
        [sys.executable, "-u", "-c", textwrap.dedent(body)],
        env=dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src")),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    time.sleep(delay)
    for _ in range(count):
        proc.send_signal(send)
        if gap:
            time.sleep(gap)
    out, _ = proc.communicate(timeout=60)
    return proc.returncode, out


def test_second_distinct_signal_hard_exits():
    code, _ = run_script(
        """
        import time
        from repro.engine.interrupt import GracefulInterrupt
        with GracefulInterrupt(raising=False):
            for _ in range(600):
                time.sleep(0.1)
        """,
        send=signal.SIGTERM, gap=1.0, count=2,
    )
    # second signal outside the duplicate window: 128 + SIGTERM
    assert code == 128 + signal.SIGTERM


def test_cli_run_drains_to_exit_13(tmp_path):
    env = dict(
        os.environ,
        PYTHONPATH=os.path.join(REPO_ROOT, "src"),
        REPRO_FAULT="nw:baseline:timeout",  # the cell hangs forever
    )
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "run", "nw",
         "--config", "baseline", "--scale", "micro"],
        env=env, cwd=str(tmp_path),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    time.sleep(2.0)
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=60)
    assert proc.returncode == 13, out
    assert "FAILED(interrupted)" in out
    assert '"error": "interrupted"' in out
