"""Tests for the 10 benchmark generators (micro scale for speed)."""

import pytest

from repro.arch.config import GPUConfig
from repro.arch.kernel import validate_kernel
from repro.characterization import intra_tb_intensity, tb_page_profiles
from repro.translation.address import PAGE_4K
from repro.workloads import (
    BENCHMARKS,
    TABLE2,
    generate_power_law_graph,
    get_scale,
    make_benchmark,
    traced_footprint_bytes,
)

SCALE = "micro"


@pytest.fixture(scope="module")
def kernels():
    return {name: make_benchmark(name, scale=SCALE) for name in BENCHMARKS}


class TestRegistry:
    def test_all_table2_benchmarks_exist(self):
        assert set(TABLE2) == set(BENCHMARKS)
        assert len(BENCHMARKS) == 10

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            make_benchmark("nope")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            get_scale("huge")


class TestGeneratedKernels:
    def test_kernels_validate(self, kernels):
        for kernel in kernels.values():
            validate_kernel(kernel)

    def test_kernels_deterministic(self):
        k1 = make_benchmark("bfs", scale=SCALE, seed=3)
        k2 = make_benchmark("bfs", scale=SCALE, seed=3)
        assert [list(tb.addresses()) for tb in k1.tbs] == [
            list(tb.addresses()) for tb in k2.tbs
        ]

    def test_seed_changes_graph_traces(self):
        k1 = make_benchmark("bfs", scale=SCALE, seed=0)
        k2 = make_benchmark("bfs", scale=SCALE, seed=1)
        assert [list(tb.addresses()) for tb in k1.tbs] != [
            list(tb.addresses()) for tb in k2.tbs
        ]

    def test_footprints_positive(self, kernels):
        for name, kernel in kernels.items():
            assert traced_footprint_bytes(kernel) > 0, name

    def test_transactions_line_aligned(self, kernels):
        for name, kernel in kernels.items():
            for addr in kernel.addresses():
                assert addr % 128 == 0, name

    def test_occupancy_schedulable(self, kernels):
        cfg = GPUConfig()
        for name, kernel in kernels.items():
            assert kernel.occupancy(cfg) >= 1, name

    def test_scales_order_sizes(self):
        micro = make_benchmark("gemm", scale="micro")
        tiny = make_benchmark("gemm", scale="tiny")
        assert tiny.total_transactions() >= micro.total_transactions()


class TestStructuralShape:
    def test_gemm_has_high_intra_tb_reuse(self, kernels):
        profiles = tb_page_profiles(kernels["gemm"])
        mean = sum(intra_tb_intensity(p) for p in profiles) / len(profiles)
        assert mean > 0.8

    def test_nw_is_compute_heavy(self, kernels):
        nw = kernels["nw"]
        gaps = [
            i.compute_gap
            for tb in nw.tbs for w in tb.warps for i in w.instructions
        ]
        assert max(gaps) >= 100.0

    def test_graph_kernels_are_divergent(self, kernels):
        """Neighbour gathers should produce multi-transaction instructions."""
        bfs = kernels["bfs"]
        multi = sum(
            1
            for tb in bfs.tbs for w in tb.warps for i in w.instructions
            if len(i.transactions) > 1
        )
        assert multi > 0

    def test_matvec_has_flood_instructions(self, kernels):
        atax = kernels["atax"]
        widths = [
            len(i.transactions)
            for tb in atax.tbs for w in tb.warps for i in w.instructions
        ]
        assert max(widths) == 32

    def test_benchmarks_touch_multiple_arrays(self, kernels):
        for name, kernel in kernels.items():
            regions = {
                addr >> 28 for addr in kernel.addresses()
            }
            assert len(regions) >= 2, name


class TestPowerLawGraph:
    def test_csr_valid(self):
        g = generate_power_law_graph(2000, edges_per_node=4, seed=1)
        g.validate()
        assert g.num_nodes == 2000

    def test_degrees_are_skewed(self):
        g = generate_power_law_graph(5000, edges_per_node=4, seed=1)
        degrees = sorted(g.degrees(), reverse=True)
        # Power law: the top node's degree dwarfs the median.
        assert degrees[0] > 10 * degrees[len(degrees) // 2]

    def test_undirected_symmetry(self):
        g = generate_power_law_graph(500, edges_per_node=3, seed=2)
        edges = set()
        for v in range(g.num_nodes):
            for u in g.neighbors(v):
                edges.add((v, int(u)))
        for v, u in edges:
            assert (u, v) in edges

    def test_too_small_graph_rejected(self):
        with pytest.raises(ValueError):
            generate_power_law_graph(4, edges_per_node=8)

    def test_deterministic_generation(self):
        g1 = generate_power_law_graph(1000, 4, seed=9)
        g2 = generate_power_law_graph(1000, 4, seed=9)
        assert (g1.col_idx == g2.col_idx).all()
        assert (g1.row_ptr == g2.row_ptr).all()
