"""Unit tests for the data cache and memory partitions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache
from repro.memory.dram import DRAMChannel
from repro.memory.interconnect import Interconnect
from repro.memory.partition import MemoryPartition, PartitionedMemory


class TestCache:
    def test_geometry(self):
        c = Cache(16 * 1024, 4, 128)
        assert c.num_sets == 32
        with pytest.raises(ValueError):
            Cache(1000, 4, 128)
        with pytest.raises(ValueError):
            Cache(0, 4, 128)

    def test_miss_does_not_allocate(self):
        c = Cache(1024, 2, 128)
        assert not c.access(0)
        assert not c.access(0)
        assert c.occupancy == 0

    def test_fill_then_hit(self):
        c = Cache(1024, 2, 128)
        c.fill(0)
        assert c.access(0)
        assert c.access(127)      # same line
        assert not c.access(128)  # next line

    def test_lru_within_set(self):
        c = Cache(256, 2, 128)  # 1 set, 2 ways
        c.fill(0)
        c.fill(128)
        c.access(0)              # refresh line 0
        evicted = c.fill(256)
        assert evicted == 1      # line address of addr 128
        assert c.access(0)
        assert not c.access(128)

    def test_dirty_eviction_counts_writeback(self):
        c = Cache(256, 2, 128)
        c.fill(0, is_write=True)
        c.fill(128)
        c.fill(256)  # evicts dirty line 0
        assert c.stats.counter("writebacks").value == 1

    def test_invalidate_and_flush(self):
        c = Cache(1024, 2, 128)
        c.fill(0)
        assert c.invalidate(0)
        assert not c.invalidate(0)
        c.fill(0)
        c.flush()
        assert c.occupancy == 0

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=300))
    @settings(max_examples=40)
    def test_property_occupancy_bounded(self, addrs):
        c = Cache(2048, 4, 128)
        for a in addrs:
            if not c.access(a):
                c.fill(a)
        assert c.occupancy <= 16
        for s in c.sets:
            assert len(s) <= 4


class TestDRAM:
    def test_latency_plus_bandwidth(self):
        d = DRAMChannel(access_latency=200.0, service_interval=4.0)
        assert d.access(0.0) == 200.0
        assert d.access(0.0) == 204.0
        assert d.access(1000.0) == 1200.0
        assert d.requests == 3


class TestInterconnect:
    def test_traversal_and_injection_serialization(self):
        noc = Interconnect(2, traversal_latency=20.0, injection_interval=2.0)
        assert noc.traverse(0, 0.0) == 20.0
        assert noc.traverse(0, 0.0) == 22.0
        # Different SM has its own injection port.
        assert noc.traverse(1, 0.0) == 20.0

    def test_invalid_sm_count(self):
        with pytest.raises(ValueError):
            Interconnect(0)


class TestPartitions:
    def test_line_interleaving_covers_all_partitions(self):
        mem = PartitionedMemory(num_partitions=4, line_bytes=128)
        seen = {mem.partition_for(i * 128).partition_id for i in range(8)}
        assert seen == {0, 1, 2, 3}

    def test_l2_hit_is_faster_than_dram(self):
        part = MemoryPartition(0, l2_latency=30.0, dram_latency=220.0)
        t_miss = part.access(0, 0.0)
        t_hit = part.access(0, t_miss)
        assert t_hit - t_miss == 30.0
        assert t_miss >= 250.0

    def test_total_hit_rate(self):
        mem = PartitionedMemory(num_partitions=2)
        mem.access(0, 0.0)
        mem.access(0, 1000.0)
        assert 0.0 < mem.total_l2_hit_rate() <= 0.5
