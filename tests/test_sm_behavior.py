"""SM-level behavioural tests: dispatch, TB-id lifecycle, translation
MSHRs, partitioned-TLB wiring, status reporting."""

import pytest

from repro import BASELINE_CONFIG, L1TLBMode, build_gpu
from repro.arch.kernel import Kernel, MemoryInstruction, TBTrace, WarpTrace

from conftest import build_kernel


def single_sm_config(**kw):
    return BASELINE_CONFIG.replace(num_sms=1, **kw)


def make_tb(tb_index, pages, gap=4.0, warps=1):
    wts = []
    for w in range(warps):
        instrs = [MemoryInstruction(gap, (p * 4096,)) for p in pages]
        wts.append(WarpTrace(instrs))
    return TBTrace(tb_index, wts)


def test_translation_mshr_merges_same_vpn_on_one_sm():
    kernel = Kernel(
        "k", threads_per_tb=32,
        tbs=[make_tb(0, [7, 7, 7], warps=2)],
    )
    gpu = build_gpu(single_sm_config())
    result = gpu.run(kernel)
    assert result.walks == 1
    merged = result.stats["sm0"]["translation_mshr_merged"]
    assert merged >= 1


def test_hw_tb_ids_recycled_across_dispatches():
    # 40 TBs through 1 SM with occupancy 16: ids must recycle cleanly.
    kernel = build_kernel(num_tbs=40, warps_per_tb=1, instrs_per_warp=3,
                          threads_per_tb=128)
    gpu = build_gpu(single_sm_config())
    result = gpu.run(kernel)
    assert result.tbs_completed == 40
    assert gpu.sms[0].tbid_alloc.in_use == 0


def test_partitioned_mode_passes_occupancy_to_tlb():
    kernel = build_kernel(num_tbs=2, warps_per_tb=1, instrs_per_warp=2,
                          threads_per_tb=512)
    gpu = build_gpu(single_sm_config(l1_tlb_mode=L1TLBMode.PARTITIONED))
    expected = kernel.occupancy(BASELINE_CONFIG)
    gpu.run(kernel)
    assert gpu.sms[0].l1_tlb.policy.occupancy == expected


def test_partitioned_redundant_fills_per_tb():
    """Two TBs missing the same page get fills into their own sets."""
    kernel = Kernel(
        "k", threads_per_tb=128,
        tbs=[make_tb(0, [7, 7]), make_tb(1, [7, 7])],
    )
    gpu = build_gpu(single_sm_config(l1_tlb_mode=L1TLBMode.PARTITIONED))
    result = gpu.run(kernel)
    # One walk (SM-level MSHR merge), but both TBs' later probes hit.
    assert result.walks == 1
    tlb = gpu.sms[0].l1_tlb
    assert tlb.contains(7, tb_id=0)
    assert tlb.contains(7, tb_id=1)


def test_sharing_flag_reset_when_tb_finishes():
    pages_a = list(range(100, 110))  # overflow TB0's set -> spill
    kernel = Kernel(
        "k", threads_per_tb=128,
        tbs=[make_tb(0, pages_a), make_tb(1, [500])],
    )
    gpu = build_gpu(
        single_sm_config(l1_tlb_mode=L1TLBMode.PARTITIONED_SHARING)
    )
    gpu.run(kernel)
    sharing = gpu.sms[0].l1_tlb.sharing
    # All TBs finished; every flag must be reset.
    assert not any(sharing.is_sharing(t) for t in range(sharing.capacity))


def test_status_counters_visible_to_scheduler():
    kernel = build_kernel(num_tbs=2, warps_per_tb=1, instrs_per_warp=10,
                          pages_per_warp=2)
    gpu = build_gpu(single_sm_config())
    gpu.run(kernel)
    sm = gpu.sms[0]
    assert sm.l1_tlb_accesses == 20
    assert 0 < sm.l1_tlb_hits < 20


def test_dispatch_respects_occupancy_limit():
    kernel = build_kernel(num_tbs=32, warps_per_tb=1, instrs_per_warp=50,
                          pages_per_warp=4, threads_per_tb=512)
    gpu = build_gpu(single_sm_config())
    max_resident = 0

    original = gpu.sms[0].dispatch_tb

    def tracking(trace, now, age):
        nonlocal max_resident
        tb = original(trace, now, age)
        max_resident = max(max_resident, gpu.sms[0].resident_tbs)
        return tb

    gpu.sms[0].dispatch_tb = tracking
    gpu.run(kernel)
    assert max_resident <= kernel.occupancy(BASELINE_CONFIG)


def test_dispatch_refill_happens_on_cadence():
    cfg = single_sm_config(tb_dispatch_interval=50.0)
    kernel = build_kernel(num_tbs=40, warps_per_tb=1, instrs_per_warp=2,
                          threads_per_tb=512)
    result = build_gpu(cfg).run(kernel)
    assert result.tbs_completed == 40


def test_empty_tb_completes_immediately():
    kernel = Kernel(
        "k", threads_per_tb=32,
        tbs=[TBTrace(0, [WarpTrace([])]), make_tb(1, [3])],
    )
    result = build_gpu(single_sm_config()).run(kernel)
    assert result.tbs_completed == 2
