"""Cross-model equivalence properties between TLB variants.

These pin down the design's degenerate cases: a partitioned TLB whose
single resident TB owns every set makes the same hit/miss decisions as
the baseline VPN-indexed TLB, and a compressed TLB with ratio 1 behaves
like an uncompressed one.  Regressions in the index-policy or storage
hooks show up here first.
"""

from hypothesis import given, settings, strategies as st

from repro.core.partitioned_tlb import PartitionedL1TLB
from repro.translation.compression import CompressedTLB
from repro.translation.tlb import SetAssociativeTLB

access_streams = st.lists(
    st.integers(min_value=0, max_value=2000), min_size=1, max_size=400
)


def run_stream(tlb, vpns, tb_id=None):
    outcomes = []
    for vpn in vpns:
        result = tlb.probe(vpn, tb_id)
        if not result.hit:
            tlb.insert(vpn, vpn + 1, tb_id)
        outcomes.append(result.hit)
    return outcomes


@given(access_streams)
@settings(max_examples=40)
def test_partitioned_with_occupancy_one_matches_baseline(vpns):
    """One TB owning all 16 sets spreads by vpn%16 — exactly the baseline
    indexing — so hit/miss sequences must be identical."""
    baseline = SetAssociativeTLB(64, 4, 1.0)
    partitioned = PartitionedL1TLB(64, 4, 1.0)
    partitioned.configure_occupancy(1)
    assert run_stream(baseline, vpns) == run_stream(partitioned, vpns, tb_id=0)


@given(access_streams)
@settings(max_examples=40)
def test_compressed_ratio_one_matches_uncompressed(vpns):
    """With max_ratio=1 no coalescing is possible: the compressed TLB
    must make the same hit/miss decisions as the plain one."""
    plain = SetAssociativeTLB(64, 4, 1.0)
    compressed = CompressedTLB(64, 4, 1.0, max_ratio=1)
    assert run_stream(plain, vpns) == run_stream(compressed, vpns)


@given(access_streams)
@settings(max_examples=40)
def test_compression_never_reduces_hits(vpns):
    """With identity-contiguous mappings, coalescing strictly adds reach:
    the compressed TLB's hit count must be >= the plain TLB's."""
    plain = SetAssociativeTLB(64, 4, 1.0)
    compressed = CompressedTLB(64, 4, 1.0, max_ratio=8)
    plain_hits = sum(run_stream(plain, vpns))
    comp_hits = sum(run_stream(compressed, vpns))
    assert comp_hits >= plain_hits


@given(access_streams, st.integers(min_value=1, max_value=16))
@settings(max_examples=40)
def test_partitioned_occupancy_never_leaks_between_tbs(vpns, occupancy):
    """Whatever the occupancy, a TB never hits on a page only another TB
    inserted (sharing disabled)."""
    tlb = PartitionedL1TLB(64, 4, 1.0)
    tlb.configure_occupancy(occupancy)
    run_stream(tlb, vpns, tb_id=0)
    other = occupancy  # a TB id in a different slot when occupancy < 16
    if occupancy < 16:
        fresh = PartitionedL1TLB(64, 4, 1.0)
        fresh.configure_occupancy(occupancy)
        run_stream(fresh, vpns, tb_id=0)
        for vpn in set(vpns):
            assert not fresh.contains(vpn, tb_id=1 % occupancy) or occupancy == 1


def test_parallel_sweep_digest_matches_sequential():
    """Fixed-seed full-simulation digest: a sweep fanned out over
    parallel supervised workers must produce byte-identical per-cell
    stats JSON to the same sweep run sequentially in-process — the
    end-to-end determinism contract the parallel runner promises."""
    import json

    from repro.experiments.runner import ExperimentRunner

    cells = [
        ("bfs", "baseline"),
        ("bfs", "partition"),
        ("bfs", "partition_sharing"),
    ]

    def digest(parallel):
        runner = ExperimentRunner(scale="micro", seed=0, parallel=parallel)
        runner.prefetch(cells)
        return {
            f"{bench}:{cfg}": json.dumps(
                runner.run(bench, cfg).to_dict(), sort_keys=True
            )
            for bench, cfg in cells
        }

    assert digest(1) == digest(3)
