"""Tests for the service WAL: CRCs, torn tails, compaction."""

import json

import pytest

from repro.engine.errors import JournalError
from repro.service import Journal


def make_journal(tmp_path, **kwargs):
    kwargs.setdefault("scale", "micro")
    kwargs.setdefault("seed", 0)
    return Journal(str(tmp_path / "journal.jsonl"), **kwargs)


def test_round_trip(tmp_path):
    journal = make_journal(tmp_path)
    journal.append("submit", {"job": {"job_id": "a"}})
    journal.append("lease", {"job_id": "a"})
    journal.close()

    replayed = make_journal(tmp_path).replay()
    assert [r["type"] for r in replayed] == ["submit", "lease"]
    assert replayed[0]["payload"] == {"job": {"job_id": "a"}}
    # header is seq 1, records follow strictly monotonic
    assert [r["seq"] for r in replayed] == [2, 3]


def test_replay_positions_append_after_tail(tmp_path):
    journal = make_journal(tmp_path)
    journal.append("submit", {"job": {"job_id": "a"}})
    journal.close()

    reopened = make_journal(tmp_path)
    reopened.replay()
    seq = reopened.append("lease", {"job_id": "a"})
    assert seq == 3


def test_torn_final_line_is_dropped(tmp_path):
    journal = make_journal(tmp_path)
    journal.append("submit", {"job": {"job_id": "a"}})
    journal.append("lease", {"job_id": "a"})
    journal.close()
    path = tmp_path / "journal.jsonl"
    text = path.read_text()
    # crash mid-append: the final record is half-written
    path.write_text(text[: len(text) - 10])

    replayed = make_journal(tmp_path).replay()
    assert [r["type"] for r in replayed] == ["submit"]


def test_torn_tail_can_be_overwritten(tmp_path):
    journal = make_journal(tmp_path)
    journal.append("submit", {"job": {"job_id": "a"}})
    journal.close()
    path = tmp_path / "journal.jsonl"
    with open(path, "a") as handle:
        handle.write('{"seq": 3, "type": "lea')  # torn append

    reopened = make_journal(tmp_path)
    assert [r["type"] for r in reopened.replay()] == ["submit"]
    reopened.append("lease", {"job_id": "a"})
    reopened.close()
    # the replacement record is appended after the torn garbage, and the
    # torn line plus the new record still replay to the same history
    replayed = make_journal(tmp_path).replay()
    assert [r["type"] for r in replayed][-1] == "lease"


def test_mid_file_corruption_raises(tmp_path):
    journal = make_journal(tmp_path)
    journal.append("submit", {"job": {"job_id": "a"}})
    journal.append("lease", {"job_id": "a"})
    journal.close()
    path = tmp_path / "journal.jsonl"
    lines = path.read_text().splitlines()
    lines[1] = lines[1][:-6] + "junk}}"
    path.write_text("\n".join(lines) + "\n")

    with pytest.raises(JournalError, match="line 2"):
        make_journal(tmp_path).replay()


def test_crc_mismatch_raises(tmp_path):
    journal = make_journal(tmp_path)
    journal.append("submit", {"job": {"job_id": "a"}})
    journal.append("lease", {"job_id": "a"})
    journal.close()
    path = tmp_path / "journal.jsonl"
    lines = path.read_text().splitlines()
    record = json.loads(lines[1])
    record["payload"] = {"job": {"job_id": "tampered"}}
    lines[1] = json.dumps(record, sort_keys=True, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n")

    with pytest.raises(JournalError, match="checksum"):
        make_journal(tmp_path).replay()


def test_non_monotonic_seq_raises(tmp_path):
    journal = make_journal(tmp_path)
    journal.append("submit", {"job": {"job_id": "a"}})
    journal.close()
    path = tmp_path / "journal.jsonl"
    lines = path.read_text().splitlines()
    # duplicate the last record: same seq twice is a spliced log
    path.write_text("\n".join(lines + [lines[-1]]) + "\n")

    with pytest.raises(JournalError, match="advance"):
        make_journal(tmp_path).replay()


def test_foreign_scale_refused(tmp_path):
    journal = make_journal(tmp_path, scale="micro")
    journal.append("submit", {"job": {"job_id": "a"}})
    journal.close()

    with pytest.raises(JournalError, match="scale"):
        make_journal(tmp_path, scale="small").replay()


def test_foreign_seed_refused(tmp_path):
    journal = make_journal(tmp_path, seed=0)
    journal.append("submit", {"job": {"job_id": "a"}})
    journal.close()

    with pytest.raises(JournalError, match="seed"):
        make_journal(tmp_path, seed=7).replay()


def test_missing_header_refused(tmp_path):
    journal = make_journal(tmp_path)
    journal.append("submit", {"job": {"job_id": "a"}})
    journal.close()
    path = tmp_path / "journal.jsonl"
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[1:]) + "\n")

    with pytest.raises(JournalError, match="header"):
        make_journal(tmp_path).replay()


def test_torn_lone_header_recovers_as_fresh(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text('{"seq": 1, "type": "head')  # crash during creation

    journal = make_journal(tmp_path)
    assert journal.replay() == []
    # the unreadable file is gone; the journal can be recreated
    journal.append("submit", {"job": {"job_id": "a"}})
    journal.close()
    assert [r["type"] for r in make_journal(tmp_path).replay()] == ["submit"]


def test_compaction_round_trip(tmp_path):
    journal = make_journal(tmp_path)
    for i in range(10):
        journal.append("submit", {"job": {"job_id": f"job{i}"}})
    snapshot = {"jobs": {}, "order": [], "counters": {}}
    journal.compact(snapshot)
    journal.close()

    reopened = make_journal(tmp_path)
    replayed = reopened.replay()
    assert [r["type"] for r in replayed] == ["snapshot"]
    assert replayed[0]["payload"] == snapshot
    # seq continues past the compacted prefix: no reuse, ever
    assert replayed[0]["seq"] == 13
    assert reopened.append("submit", {"job": {"job_id": "next"}}) == 14


def test_peek_header(tmp_path):
    journal = make_journal(tmp_path, scale="micro", seed=3)
    journal.append("submit", {"job": {"job_id": "a"}})
    journal.close()

    header = Journal.peek_header(str(tmp_path / "journal.jsonl"))
    assert header["scale"] == "micro"
    assert header["seed"] == 3


def test_peek_header_missing_or_foreign(tmp_path):
    assert Journal.peek_header(str(tmp_path / "nope.jsonl")) is None
    path = tmp_path / "other.jsonl"
    path.write_text('{"kind": "something-else"}\n')
    assert Journal.peek_header(str(path)) is None


def test_truncation_at_every_byte_of_final_record(tmp_path):
    """Property: tearing the final append at ANY byte boundary is
    equivalent to the append never happening — replay yields exactly
    the records before it, and the journal stays appendable."""
    journal = make_journal(tmp_path)
    journal.append("submit", {"job": {"job_id": "a"}})
    journal.append("lease", {"job_id": "a"})
    journal.close()
    path = tmp_path / "journal.jsonl"
    blob = path.read_bytes()
    intact = blob[: blob.rindex(b'{"crc"')]  # start of the final record

    for cut in range(len(intact), len(blob)):
        path.write_bytes(blob[:cut])
        replayed = make_journal(tmp_path).replay()
        expected = ["submit"] if cut < len(blob) else ["submit", "lease"]
        assert [r["type"] for r in replayed] == expected, f"cut at {cut}"
        # and the torn tail never blocks the next append
        reopened = make_journal(tmp_path)
        reopened.replay()
        reopened.append("retry", {"job_id": "a", "attempt": 1,
                                  "error_class": "transient"})
        reopened.close()
        final = make_journal(tmp_path).replay()
        assert [r["type"] for r in final] == expected + ["retry"]
