"""The shipped examples must keep running end-to-end.

Each example is executed in-process (cheapest scale) with argv patched;
assertions check the banner output so silent breakage is caught.
"""

import runpy
import sys

import pytest


def run_example(path, argv, capsys):
    old = sys.argv
    sys.argv = [path] + argv
    try:
        with pytest.raises(SystemExit) as excinfo:
            runpy.run_path(path, run_name="__main__")
        assert excinfo.value.code in (0, None)
    finally:
        sys.argv = old
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("examples/quickstart.py", ["nw", "micro"], capsys)
    assert "Speedup over baseline" in out


def test_characterize_workload(capsys):
    out = run_example(
        "examples/characterize_workload.py", ["nw", "micro"], capsys
    )
    assert "inter-TB" in out
    assert "Warp-granularity reuse" in out


def test_custom_workload(capsys):
    out = run_example("examples/custom_workload.py", [], capsys)
    assert "part+share" in out


def test_policy_ablation(capsys):
    out = run_example("examples/policy_ablation.py", ["nw", "micro"], capsys)
    assert "one_bit" in out
    assert "512x8" in out


def test_oversubscription_study(capsys):
    out = run_example(
        "examples/oversubscription_study.py", ["nw", "micro"], capsys
    )
    assert "evictions" in out
