"""Tests for report rendering and the bench-output -> EXPERIMENTS parser."""

import runpy

import pytest

from repro.experiments.report import ExperimentReport, render_markdown
from repro.experiments.runner import ShapeCheck, summarize_checks


class TestReportRendering:
    def test_render_single_report(self):
        report = ExperimentReport(
            "Fig X", "A title", "col1 col2\n1 2",
            [ShapeCheck("claim holds", True, "x=1"),
             ShapeCheck("claim fails", False)],
        )
        text = report.render()
        assert "## Fig X — A title" in text
        assert "[PASS] claim holds (x=1)" in text
        assert "[FAIL] claim fails" in text
        assert "1/2 shape criteria hold" in text

    def test_render_markdown_totals(self):
        reports = [
            ExperimentReport("A", "t", "x", [ShapeCheck("ok", True)]),
            ExperimentReport("B", "t", "y", [ShapeCheck("no", False),
                                             ShapeCheck("yes", True)]),
        ]
        text = render_markdown(reports, "micro")
        assert "2/3 shape checks hold" in text
        assert "`micro`" in text

    def test_summarize(self):
        checks = [ShapeCheck("a", True), ShapeCheck("b", False)]
        assert summarize_checks(checks) == "1/2 shape criteria hold"


SAMPLE_BENCH_OUTPUT = """
============================= test session starts ==============================
benchmarks/test_fig2.py
=== Fig 2 (scale=small) ===
benchmark   64-entry 256-entry
bfs            0.300     0.600
  [PASS] most benchmarks improve (n=1)
  [FAIL] something else
.
=== Table III ===
GPU config | 16 SMs
  [PASS] 16 SMs
============================= 2 passed in 1.00s ===============================
"""


class TestBenchOutputParser:
    @pytest.fixture()
    def parser(self):
        module = runpy.run_path("tools/bench_to_experiments.py")
        return module

    def test_parse_sections(self, parser):
        sections, scale = parser["parse"](SAMPLE_BENCH_OUTPUT)
        assert scale == "small"
        assert set(sections) == {"Fig 2", "Table III"}
        assert sections["Fig 2"]["checks"] == [
            ("PASS", "most benchmarks improve (n=1)"),
            ("FAIL", "something else"),
        ]
        # pytest progress dots are filtered out of tables
        assert all(t.strip(".") for t in sections["Fig 2"]["table"])

    def test_render_counts_pass_fail(self, parser):
        sections, scale = parser["parse"](SAMPLE_BENCH_OUTPUT)
        text = parser["render"](sections, scale, "sample.txt")
        assert "2/3 shape checks hold" in text
        assert "## Fig 2" in text
        assert "## Table III" in text

    def test_empty_input_handled(self, parser):
        sections, _scale = parser["parse"]("no sections here")
        assert sections == {}
