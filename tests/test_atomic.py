"""Tests for the atomic durable-write helper."""

import os

import pytest

from repro.engine.atomic import atomic_path, atomic_write


def test_atomic_write_creates_file(tmp_path):
    path = tmp_path / "out.json"
    atomic_write(str(path), "{\"a\": 1}\n")
    assert path.read_text() == "{\"a\": 1}\n"


def test_atomic_write_replaces_existing(tmp_path):
    path = tmp_path / "out.json"
    path.write_text("old")
    atomic_write(str(path), "new")
    assert path.read_text() == "new"


def test_atomic_write_accepts_bytes(tmp_path):
    path = tmp_path / "blob.bin"
    atomic_write(str(path), b"\x00\x01\x02")
    assert path.read_bytes() == b"\x00\x01\x02"


def test_atomic_write_leaves_no_temp_files(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write(str(path), "data")
    assert os.listdir(tmp_path) == ["out.txt"]


def test_atomic_path_preserves_extension(tmp_path):
    # np.savez appends ".npz" unless the temp name already ends in it;
    # the temp name must therefore keep the destination's extension
    path = tmp_path / "cache.npz"
    with atomic_path(str(path)) as tmp:
        assert tmp.endswith(".npz")
        with open(tmp, "w") as handle:
            handle.write("payload")
    assert path.read_text() == "payload"


def test_atomic_path_failure_keeps_original(tmp_path):
    path = tmp_path / "out.txt"
    path.write_text("original")
    with pytest.raises(RuntimeError):
        with atomic_path(str(path)) as tmp:
            with open(tmp, "w") as handle:
                handle.write("partial")
            raise RuntimeError("writer died mid-update")
    # the original survives and the torn temp file is cleaned up
    assert path.read_text() == "original"
    assert os.listdir(tmp_path) == ["out.txt"]


def test_atomic_path_failure_before_any_write(tmp_path):
    path = tmp_path / "out.txt"
    with pytest.raises(ValueError):
        with atomic_path(str(path)):
            raise ValueError("nothing written")
    assert os.listdir(tmp_path) == []


# --------------------------------------------------------------------- #
# Disk faults through the storage shim: failed writes must never strand
# temp files or touch the destination
# --------------------------------------------------------------------- #
def _faulted_storage(kind, layer="atomic"):
    from repro.engine.storage import DiskFaultKind, DiskFaultSpec, Storage

    return Storage(faults=[DiskFaultSpec(layer, DiskFaultKind(kind))])


@pytest.mark.parametrize("kind", ["enospc", "torn", "fsync"])
def test_injected_fault_leaves_no_strandings(tmp_path, kind):
    path = tmp_path / "out.json"
    path.write_text("original")
    with pytest.raises(OSError):
        atomic_write(str(path), "replacement", storage=_faulted_storage(kind))
    # the destination is untouched and no temp artifact survives
    assert path.read_text() == "original"
    assert os.listdir(tmp_path) == ["out.json"]


def test_injected_fault_with_no_preexisting_file(tmp_path):
    path = tmp_path / "fresh.json"
    with pytest.raises(OSError):
        atomic_write(str(path), "data", storage=_faulted_storage("torn"))
    assert os.listdir(tmp_path) == []


def test_cleanup_sweeps_writer_derived_siblings(tmp_path):
    """A path-writing library handed the temp name may create a sibling
    under a name it chose itself (np.savez appends ``.npz``); a failed
    write must sweep those too, not just the exact temp path."""
    path = tmp_path / "cache"  # no extension: tmp name is "cache.tmp"
    with pytest.raises(RuntimeError):
        with atomic_path(str(path)) as tmp:
            with open(tmp + ".npz", "w") as handle:  # savez-style name
                handle.write("derived")
            with open(tmp, "w") as handle:
                handle.write("payload")
            raise RuntimeError("writer died after creating a sibling")
    assert os.listdir(tmp_path) == []


def test_atomic_write_routes_through_given_storage(tmp_path):
    from repro.engine.storage import Storage

    ops = []
    store = Storage(record=ops.append)
    atomic_write(str(tmp_path / "x.json"), "data", storage=store)
    kinds = [op.kind for op in ops]
    assert kinds == ["write", "fsync", "rename", "fsync_dir"]
