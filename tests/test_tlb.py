"""Unit tests for the set-associative TLB."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.translation.tlb import SetAssociativeTLB, VPNIndexPolicy


def make_tlb(entries=64, assoc=4, latency=1.0, **kw):
    return SetAssociativeTLB(entries, assoc, latency, **kw)


class TestBasics:
    def test_miss_then_hit(self):
        tlb = make_tlb()
        assert not tlb.probe(0x10).hit
        tlb.insert(0x10, 0x99)
        result = tlb.probe(0x10)
        assert result.hit and result.ppn == 0x99

    def test_geometry(self):
        tlb = make_tlb(64, 4)
        assert tlb.num_sets == 16
        with pytest.raises(ValueError):
            make_tlb(65, 4)
        with pytest.raises(ValueError):
            make_tlb(0, 4)

    def test_stats_counting(self):
        tlb = make_tlb()
        tlb.probe(1)
        tlb.insert(1, 1)
        tlb.probe(1)
        assert tlb.hits == 1
        assert tlb.misses == 1
        assert tlb.accesses == 2
        assert tlb.hit_rate == 0.5

    def test_insert_refreshes_existing(self):
        tlb = make_tlb()
        tlb.insert(5, 50)
        assert tlb.insert(5, 51) is None
        assert tlb.probe(5).ppn == 51
        assert tlb.occupancy == 1

    def test_invalidate(self):
        tlb = make_tlb()
        tlb.insert(7, 70)
        assert tlb.invalidate(7)
        assert not tlb.invalidate(7)
        assert not tlb.probe(7).hit

    def test_flush(self):
        tlb = make_tlb()
        for v in range(10):
            tlb.insert(v, v)
        tlb.flush()
        assert tlb.occupancy == 0

    def test_contains_does_not_touch_lru_or_stats(self):
        tlb = make_tlb(8, 2)  # 4 sets
        tlb.insert(0, 0)
        before = tlb.accesses
        assert tlb.contains(0)
        assert not tlb.contains(99)
        assert tlb.accesses == before


class TestLRU:
    def test_lru_eviction_within_set(self):
        # 2-way, 1 set: third insert evicts least recently used.
        tlb = make_tlb(2, 2)
        tlb.insert(1, 1)
        tlb.insert(2, 2)
        tlb.probe(1)            # refresh 1: LRU is now 2
        evicted = tlb.insert(3, 3)
        assert evicted == 2
        assert tlb.probe(1).hit
        assert not tlb.probe(2).hit

    def test_set_isolation(self):
        # 4 entries, 2-way => 2 sets; VPNs 0 and 1 go to different sets.
        tlb = make_tlb(4, 2)
        tlb.insert(0, 0)
        tlb.insert(2, 2)
        tlb.insert(4, 4)  # evicts within set 0 only
        assert tlb.occupancy <= 4
        sets = tlb.set_occupancies()
        assert sets[0] == 2

    def test_probe_latency_scales_with_sets_probed(self):
        tlb = make_tlb(latency=2.0)
        assert tlb.probe_latency(1) == 2.0
        assert tlb.probe_latency(3) == 6.0
        assert tlb.probe_latency(0) == 2.0  # clamps at one set


class TestIndexPolicy:
    def test_vpn_policy_granularity(self):
        policy = VPNIndexPolicy(num_sets=4, granularity=8)
        assert policy.lookup_sets(0, None) == policy.lookup_sets(7, None)
        assert policy.lookup_sets(0, None) != policy.lookup_sets(8, None)

    def test_invalid_policy_parameters(self):
        with pytest.raises(ValueError):
            VPNIndexPolicy(0)
        with pytest.raises(ValueError):
            VPNIndexPolicy(4, granularity=0)


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                    max_size=300))
    @settings(max_examples=50)
    def test_property_occupancy_bounded(self, vpns):
        tlb = make_tlb(16, 4)
        for v in vpns:
            tlb.insert(v, v + 1000)
        assert tlb.occupancy <= 16
        for s in tlb.set_occupancies():
            assert s <= 4

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                    max_size=300))
    @settings(max_examples=50)
    def test_property_probe_after_insert_without_pressure(self, vpns):
        """With a TLB bigger than the VPN universe, everything hits."""
        tlb = make_tlb(512, 4)
        for v in vpns:
            tlb.insert(v, v * 2)
        for v in set(vpns):
            result = tlb.probe(v)
            assert result.hit and result.ppn == v * 2

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                    max_size=500))
    @settings(max_examples=30)
    def test_property_hit_implies_correct_ppn(self, vpns):
        tlb = make_tlb(64, 4)
        for v in vpns:
            result = tlb.probe(v)
            if result.hit:
                assert result.ppn == v + 7
            else:
                tlb.insert(v, v + 7)
