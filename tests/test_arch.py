"""Unit tests for the GPU substrate: coalescer, kernel model, TB ids,
GTO issue port."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.coalescer import coalesce, coalesce_strided
from repro.arch.config import GPUConfig
from repro.arch.kernel import (
    Kernel,
    MemoryInstruction,
    TBTrace,
    WarpTrace,
    validate_kernel,
)
from repro.arch.thread_block import TBIDAllocator
from repro.arch.warp import WarpRuntime
from repro.arch.warp_scheduler import GTOIssuePort
from repro.engine.simulator import Simulator


class TestCoalescer:
    def test_fully_coalesced_warp(self):
        addrs = [i * 4 for i in range(32)]  # 128 consecutive bytes
        assert coalesce(addrs) == [0]

    def test_fully_divergent_warp(self):
        addrs = [i * 4096 for i in range(32)]
        assert len(coalesce(addrs)) == 32

    def test_order_is_first_appearance(self):
        assert coalesce([512, 0, 513]) == [512, 0]

    def test_strided_helper(self):
        assert coalesce_strided(0, 4, 32) == [0]
        assert len(coalesce_strided(0, 128, 32)) == 32

    def test_invalid_line_size(self):
        with pytest.raises(ValueError):
            coalesce([0], line_bytes=0)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 30), min_size=1,
                    max_size=32))
    @settings(max_examples=50)
    def test_property_transactions_cover_all_threads(self, addrs):
        txs = set(coalesce(addrs))
        assert len(txs) <= len(addrs)
        for a in addrs:
            assert (a // 128) * 128 in txs
        for t in txs:
            assert t % 128 == 0


class TestKernelModel:
    def test_occupancy_limited_by_threads(self):
        k = Kernel("k", threads_per_tb=512, tbs=[],
                   registers_per_thread=1)
        assert k.occupancy(GPUConfig()) == 4  # 2048 / 512

    def test_occupancy_limited_by_tb_cap(self):
        k = Kernel("k", threads_per_tb=32, tbs=[], registers_per_thread=1)
        assert k.occupancy(GPUConfig()) == 16

    def test_occupancy_limited_by_registers(self):
        k = Kernel("k", threads_per_tb=256, tbs=[],
                   registers_per_thread=32)  # 32 KB per TB of 64 KB file
        assert k.occupancy(GPUConfig()) == 2

    def test_occupancy_limited_by_shared_memory(self):
        k = Kernel("k", threads_per_tb=64, tbs=[], registers_per_thread=1,
                   shared_mem_per_tb=16 * 1024)
        assert k.occupancy(GPUConfig()) == 3  # 48 KB / 16 KB

    def test_unschedulable_kernel_raises(self):
        k = Kernel("k", threads_per_tb=4096, tbs=[])
        with pytest.raises(ValueError):
            k.occupancy(GPUConfig())

    def test_instruction_validation(self):
        with pytest.raises(ValueError):
            MemoryInstruction(-1.0, (0,))
        with pytest.raises(ValueError):
            MemoryInstruction(0.0, ())

    def test_validate_kernel_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_kernel(Kernel("k", threads_per_tb=32, tbs=[]))

    def test_tb_interleaved_addresses_round_robin(self):
        w0 = WarpTrace([MemoryInstruction(0.0, (0, 128)),
                        MemoryInstruction(0.0, (256,))])
        w1 = WarpTrace([MemoryInstruction(0.0, (512,))])
        tb = TBTrace(0, [w0, w1])
        assert list(tb.interleaved_addresses()) == [0, 512, 128, 256]

    def test_counts(self):
        w = WarpTrace([MemoryInstruction(0.0, (0, 128))])
        tb = TBTrace(0, [w])
        assert tb.num_instructions == 1
        assert tb.num_transactions == 2


class TestTBIDAllocator:
    def test_ids_unique_and_recycled(self):
        alloc = TBIDAllocator(4)
        ids = [alloc.allocate() for _ in range(4)]
        assert sorted(ids) == [0, 1, 2, 3]
        with pytest.raises(RuntimeError):
            alloc.allocate()
        alloc.release(2)
        assert alloc.allocate() == 2

    def test_smallest_id_first(self):
        alloc = TBIDAllocator(4)
        assert alloc.allocate() == 0
        assert alloc.allocate() == 1

    def test_double_release_rejected(self):
        alloc = TBIDAllocator(2)
        tb = alloc.allocate()
        alloc.release(tb)
        with pytest.raises(ValueError):
            alloc.release(tb)

    def test_out_of_range_release(self):
        with pytest.raises(ValueError):
            TBIDAllocator(2).release(5)


class _FakeTB:
    hw_tb_id = 0
    class trace:  # noqa: D401 - minimal stand-in
        tb_index = 0


def make_warp(age, n_instr=1):
    trace = WarpTrace([MemoryInstruction(0.0, (0,)) for _ in range(n_instr)])
    return WarpRuntime(trace, warp_id=age, tb=_FakeTB(), age=age)


class TestGTOIssuePort:
    def test_serializes_issue(self):
        sim = Simulator()
        port = GTOIssuePort(sim, issue_interval=2.0)
        grants = []
        for age in range(3):
            port.request(make_warp(age), lambda t, a=age: grants.append((a, t)))
        sim.run()
        assert grants == [(0, 0.0), (1, 2.0), (2, 4.0)]

    def test_greedy_prefers_last_issued(self):
        sim = Simulator()
        port = GTOIssuePort(sim, issue_interval=1.0)
        order = []
        w0, w1 = make_warp(0, 2), make_warp(1, 2)

        def on_grant(w):
            def cb(_t):
                order.append(w.age)
                if len(order) < 4 and w.pc == 0:
                    w.pc += 1
                    port.request(w, on_grant(w))
            return cb

        # Oldest (w0) issues first, then re-requests: greedy keeps w0.
        port.request(w0, on_grant(w0))
        port.request(w1, on_grant(w1))
        sim.run()
        assert order[0] == 0
        assert order[1] == 0  # greedy: w0 again, then oldest w1

    def test_oldest_wins_when_greedy_absent(self):
        sim = Simulator()
        port = GTOIssuePort(sim, issue_interval=1.0)
        order = []
        port.request(make_warp(7), lambda t: order.append(7))
        port.request(make_warp(3), lambda t: order.append(3))
        sim.run()
        # Both waiting at arbitration time: lower age (3) goes first only
        # if it was pending before the first grant; FIFO arbitration at
        # t=0 sees both -> oldest first.
        assert order == [3, 7]

    def test_duplicate_request_rejected(self):
        sim = Simulator()
        port = GTOIssuePort(sim)
        w = make_warp(0)
        port.request(w, lambda t: None)
        with pytest.raises(RuntimeError):
            port.request(w, lambda t: None)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            GTOIssuePort(Simulator(), issue_interval=0.0)
