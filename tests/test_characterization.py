"""Unit + property tests for the characterization tools (Eq. 1, reuse
distance via Fenwick-tree stack distance)."""

import pytest
from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.arch.kernel import Kernel, MemoryInstruction, TBTrace, WarpTrace
from repro.characterization.reuse import (
    ReuseBins,
    bin_index,
    inter_tb_bins,
    inter_tb_intensity,
    intra_tb_bins,
    intra_tb_intensity,
)
from repro.characterization.reuse_distance import (
    FenwickTree,
    ReuseDistanceAnalyzer,
    cdf_points,
    distance_bucket,
    fraction_within,
    interleaved_distances,
    isolated_distances,
)


def kernel_from_pages(tb_pages):
    """Build a kernel where TB i's single warp touches tb_pages[i]."""
    tbs = []
    for t, pages in enumerate(tb_pages):
        instrs = [MemoryInstruction(1.0, (p * 4096,)) for p in pages]
        tbs.append(TBTrace(t, [WarpTrace(instrs)]))
    return Kernel("k", threads_per_tb=32, tbs=tbs)


class TestIntensity:
    def test_intra_no_reuse(self):
        assert intra_tb_intensity(Counter({1: 1, 2: 1})) == 0.0

    def test_intra_full_reuse(self):
        assert intra_tb_intensity(Counter({1: 5})) == 1.0

    def test_intra_partial(self):
        # 4 accesses: page 1 twice (reused), pages 2,3 once.
        assert intra_tb_intensity(Counter({1: 2, 2: 1, 3: 1})) == 0.5

    def test_inter_eq1(self):
        c1 = Counter({1: 3, 2: 1})  # 4 accesses, page 1 shared
        c2 = Counter({1: 1, 9: 5})
        assert inter_tb_intensity(c1, c2) == 0.75
        assert inter_tb_intensity(c2, c1) == pytest.approx(1 / 6)

    def test_inter_empty(self):
        assert inter_tb_intensity(Counter(), Counter({1: 1})) == 0.0

    def test_bin_index_boundaries(self):
        assert bin_index(0.0) == 0
        assert bin_index(0.199) == 0
        assert bin_index(0.2) == 1
        assert bin_index(1.0) == 4
        with pytest.raises(ValueError):
            bin_index(1.5)

    def test_bins_sum_to_one(self):
        kernel = kernel_from_pages([[1, 1, 2], [3, 4], [5, 5, 5]])
        for bins in (intra_tb_bins(kernel), inter_tb_bins(kernel)):
            assert sum(bins.fractions) == pytest.approx(1.0)

    def test_disjoint_tbs_have_zero_inter(self):
        kernel = kernel_from_pages([[1, 2], [3, 4], [5, 6]])
        bins = inter_tb_bins(kernel)
        assert bins.fractions[0] == 1.0

    def test_identical_tbs_have_full_inter(self):
        kernel = kernel_from_pages([[1, 2], [1, 2]])
        bins = inter_tb_bins(kernel)
        assert bins.fractions[4] == 1.0

    def test_reuse_bins_validation(self):
        with pytest.raises(ValueError):
            ReuseBins([0.5, 0.5])


class TestFenwick:
    def test_prefix_sums(self):
        t = FenwickTree(10)
        t.add(3, 1)
        t.add(7, 2)
        assert t.prefix(2) == 0
        assert t.prefix(3) == 1
        assert t.prefix(10) == 3
        assert t.range_sum(4, 7) == 2
        assert t.range_sum(8, 3) == 0

    def test_bounds(self):
        t = FenwickTree(4)
        with pytest.raises(IndexError):
            t.add(0, 1)
        with pytest.raises(IndexError):
            t.add(5, 1)

    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1,
                    max_size=100))
    @settings(max_examples=40)
    def test_property_matches_naive(self, positions):
        t = FenwickTree(50)
        naive = [0] * 51
        for p in positions:
            t.add(p, 1)
            naive[p] += 1
        for lo in range(1, 51, 7):
            for hi in range(lo, 51, 11):
                assert t.range_sum(lo, hi) == sum(naive[lo:hi + 1])


class TestReuseDistance:
    def test_distance_buckets(self):
        assert distance_bucket(0) == 0
        assert distance_bucket(1) == 0
        assert distance_bucket(2) == 1
        assert distance_bucket(64) == 6
        assert distance_bucket(65) == 7

    def test_simple_stream(self):
        # Stream (one TB): A B C A -> reuse of A at distance 2 (B, C).
        a = ReuseDistanceAnalyzer(10)
        for page in ["A", "B", "C", "A"]:
            a.feed(0, hash(page))
        assert a.reuses == 1
        assert a.histogram.buckets == {distance_bucket(2): 1}

    def test_interference_counts_other_tbs_pages(self):
        # TB0: A ... A with TB1 touching B, C in between -> distance 2.
        a = ReuseDistanceAnalyzer(10)
        a.feed(0, 100)
        a.feed(1, 200)
        a.feed(1, 300)
        a.feed(0, 100)
        assert a.histogram.buckets == {distance_bucket(2): 1}

    def test_same_page_other_tb_not_counted_as_unique(self):
        # TB0: A, TB1: A, TB0: A -> zero unique translations in between.
        a = ReuseDistanceAnalyzer(10)
        a.feed(0, 100)
        a.feed(1, 100)
        a.feed(0, 100)
        assert a.histogram.buckets == {0: 1}

    def test_immediate_reuse_distance_zero(self):
        a = ReuseDistanceAnalyzer(4)
        a.feed(0, 1)
        a.feed(0, 1)
        assert a.histogram.buckets == {0: 1}

    def test_isolated_distances_shorter_than_interleaved(self):
        # Two TBs cycling private pages; interleaving doubles distances.
        pages = list(range(8)) * 3
        kernel = kernel_from_pages([pages, [p + 100 for p in pages]])
        iso = isolated_distances(kernel)
        inter_stream = []
        it0 = iter(kernel.tbs[0].interleaved_addresses())
        it1 = iter(kernel.tbs[1].interleaved_addresses())
        for a0, a1 in zip(it0, it1):
            inter_stream.append((0, a0 // 4096))
            inter_stream.append((1, a1 // 4096))
        inter = interleaved_distances([inter_stream])
        assert fraction_within(iso, 8) > fraction_within(inter, 8)

    def test_fraction_within(self):
        a = ReuseDistanceAnalyzer(100)
        stream = [(0, p) for p in list(range(4)) * 5]
        a.feed_stream(stream)
        assert fraction_within(a.histogram, 4) == 1.0
        assert fraction_within(a.histogram, 1) == 0.0

    def test_cdf_points_monotonic(self):
        kernel = kernel_from_pages([list(range(20)) * 2])
        hist = isolated_distances(kernel)
        points = cdf_points(hist)
        values = [v for _e, v in points]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 30)),
                    min_size=2, max_size=300))
    @settings(max_examples=40)
    def test_property_matches_naive_stack_distance(self, stream):
        analyzer = ReuseDistanceAnalyzer(len(stream))
        naive_hist = {}
        last_by_tb = {}
        history = []
        for pos, (tb, page) in enumerate(stream):
            key = (tb, page)
            if key in last_by_tb:
                prev = last_by_tb[key]
                between = {p for p in history[prev + 1: pos] if p != page}
                bucket = distance_bucket(len(between))
                naive_hist[bucket] = naive_hist.get(bucket, 0) + 1
            last_by_tb[key] = pos
            history.append(page)
            analyzer.feed(tb, page)
        assert dict(analyzer.histogram.buckets) == naive_hist
